"""Tests for multi-query sharing and replicate-and-split (Appendix)."""

import pytest

from repro.core import parse_gfd
from repro.parallel import build_shared_groups, singleton_groups, split_oversized
from repro.parallel.skew import split_statistics
from repro.parallel.multiquery import _isomorphism


A = parse_gfd("x:R -e-> y:S", "x.A = 1 => y.B = 2", name="a")
B = parse_gfd("u:R -e-> v:S", "u.A = 9 => v.C = 3", name="b")  # same pattern
C = parse_gfd("x:R -f-> y:S", "x.A = 1 => y.B = 2", name="c")  # different edge
DUP = parse_gfd("p:R -e-> q:S", "p.A = 1 => q.B = 2", name="dup")  # ≡ A


class TestSharedGroups:
    def test_isomorphic_patterns_grouped(self):
        groups = build_shared_groups([A, B, C])
        sizes = sorted(len(g.members) for g in groups)
        assert sizes == [1, 2]

    def test_every_gfd_in_exactly_one_group(self):
        groups = build_shared_groups([A, B, C, DUP])
        indices = sorted(i for g in groups for i in g.indices)
        assert indices == [0, 1, 2, 3]

    def test_member_literals_translated_to_leader_space(self):
        groups = build_shared_groups([A, B])
        group = next(g for g in groups if len(g.members) == 2)
        member = group.members[1]
        for literal in (*member.lhs, *member.rhs):
            for var in literal.variables():
                assert var in A.pattern  # leader variables

    def test_iso_maps_leader_to_member(self):
        groups = build_shared_groups([A, B])
        group = next(g for g in groups if len(g.members) == 2)
        member = group.members[1]
        assert member.iso == {"x": "u", "y": "v"}

    def test_singleton_groups(self):
        groups = singleton_groups([A, B, C])
        assert len(groups) == 3
        assert all(len(g.members) == 1 for g in groups)

    def test_wildcards_only_align_with_wildcards(self):
        wild = parse_gfd("x -e-> y:S", " => y.B = 1", name="w")
        concrete = parse_gfd("x:R -e-> y:S", " => y.B = 1", name="k")
        assert _isomorphism(wild, concrete) is None
        groups = build_shared_groups([wild, concrete])
        assert len(groups) == 2


class TestSplitOversized:
    def test_small_units_untouched(self):
        from tests.test_balancing_assignment import make_unit

        units = [make_unit(5, size=5)]
        assert split_oversized(units, threshold=10) == units

    def test_oversized_split_into_k(self):
        from tests.test_balancing_assignment import make_unit

        units = [make_unit(100, size=25)]
        split = split_oversized(units, threshold=10)
        assert len(split) == 3  # ceil(25/10)
        assert sum(1 for u in split if u.primary) == 1
        assert all(u.split_k == 3 for u in split)
        assert all(abs(u.cost_share - 1 / 3) < 1e-9 for u in split)

    def test_split_ids_distinct_per_original(self):
        from tests.test_balancing_assignment import make_unit

        units = [make_unit(100, size=25), make_unit(100, size=30)]
        split = split_oversized(units, threshold=10)
        ids = {u.split_id for u in split}
        assert len(ids) == 2

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            split_oversized([], threshold=0)

    def test_statistics(self):
        from tests.test_balancing_assignment import make_unit

        units = split_oversized([make_unit(100, size=25)], threshold=10)
        stats = split_statistics(units)
        assert stats["split_units"] == 3
        assert stats["split_groups"] == 1
        assert stats["max_block"] == 25
