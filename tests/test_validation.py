"""Tests for sequential validation / error detection (Section 5.1)."""

from repro.core import (
    det_vio,
    make_violation,
    parse_gfd,
    satisfies,
    violation_entities,
    violations_of,
)
from repro.matching.vf2 import MatchStats


class TestExample6:
    def test_g1_violates_phi1(self, g1, phi1):
        """Example 6(a): G1 ⊭ φ1, witnessed by the two DL1 flights."""
        assert not satisfies([phi1], g1)
        vio = det_vio([phi1], g1)
        assert len(vio) == 2  # both orientations of the flight pair
        flights = {v.match["x"] for v in vio}
        assert flights == {"flight1", "flight2"}

    def test_g2_violates_phi6(self, g2, phi6):
        """Example 6(a): G2 ⊭ φ6 via x′ → acct3, x → acct4."""
        vio = det_vio([phi6], g2)
        assert vio
        witnesses = {(v.match["x'"], v.match["x"]) for v in vio}
        assert ("acct3", "acct4") in witnesses
        # acct1/acct2 are both fake: those matches satisfy the dependency.
        assert ("acct1", "acct2") not in witnesses

    def test_g3_satisfies_phi2(self, g3, phi2):
        """Example 6(b): no Q2 match in G3, trivial satisfaction."""
        assert satisfies([phi2], g3)
        assert det_vio([phi2], g3) == set()


class TestViolationObjects:
    def test_hashable_and_deduplicated(self, g1, phi1):
        first = set(violations_of(phi1, g1))
        second = set(violations_of(phi1, g1))
        assert first == second
        assert len(first | second) == len(first)

    def test_assignment_order_follows_pattern_variables(self, g1, phi1):
        violation = next(iter(violations_of(phi1, g1)))
        assert [var for var, _ in violation.assignment] == phi1.pattern.variables

    def test_match_roundtrip(self, g1, phi1):
        violation = next(iter(violations_of(phi1, g1)))
        rebuilt = make_violation(phi1, violation.match)
        assert rebuilt == violation

    def test_nodes_and_entities(self, g1, phi1):
        vio = det_vio([phi1], g1)
        entities = violation_entities(vio)
        assert "flight1" in entities and "flight2" in entities

    def test_str_mentions_gfd_name(self, g1, phi1):
        violation = next(iter(violations_of(phi1, g1)))
        assert "phi1" in str(violation)


class TestDetVio:
    def test_union_over_sigma(self, g1, g3, phi1, phi2):
        graph = g1.copy()
        graph.merge(g3)
        vio = det_vio([phi1, phi2], graph)
        assert {v.gfd_name for v in vio} == {"phi1"}

    def test_limit(self, g1, phi1):
        assert len(list(violations_of(phi1, g1, limit=1))) == 1

    def test_stats_accumulate(self, g1, phi1):
        stats = MatchStats()
        det_vio([phi1], g1, stats=stats)
        assert stats.steps > 0

    def test_empty_sigma(self, g1):
        assert det_vio([], g1) == set()
        assert satisfies([], g1)

    def test_lhs_filtering(self, g1):
        """Matches whose premise fails are not violations."""
        guarded = parse_gfd(
            "x:flight -number-> x1:id; y:flight -number-> y1:id",
            "x1.val = 'NOPE' => x1.val = y1.val",
        )
        assert satisfies([guarded], g1)
