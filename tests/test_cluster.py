"""Tests for the simulated cluster and its cost accounting."""

import pytest

from repro.parallel import CostModel, SimulatedCluster, run_concurrently


class TestAccounting:
    def test_worker_charges_accumulate(self):
        cluster = SimulatedCluster(2)
        cluster.charge_unit(0, steps=100, block_size=10)
        cluster.charge_unit(0, steps=50, block_size=5)
        cluster.charge_unit(1, steps=10, block_size=1)
        report = cluster.report()
        assert report.per_worker_computation[0] > report.per_worker_computation[1]
        assert report.units == 3

    def test_makespan_is_max(self):
        cluster = SimulatedCluster(3)
        for worker, steps in enumerate((10, 200, 30)):
            cluster.charge_unit(worker, steps=steps, block_size=0)
        assert cluster.report().makespan == 200 * cluster.cost.step_cost

    def test_shipping_drives_comm_time(self):
        cluster = SimulatedCluster(2)
        base = cluster.report().communication_time
        cluster.ship_to(0, size=1000)
        assert cluster.report().communication_time > base

    def test_comm_time_uses_max_worker_volume(self):
        # Parallel shipment: two workers shipping the same amount take the
        # same comm time as one (plus the message term).
        a = SimulatedCluster(2)
        a.ship_to(0, 500)
        b = SimulatedCluster(2)
        b.ship_to(0, 500)
        b.ship_to(1, 500)
        assert b.report().communication_time == pytest.approx(
            a.report().communication_time + b.cost.message_cost / 2
        )

    def test_estimation_cost_splits_across_workers(self):
        small = SimulatedCluster(2)
        big = SimulatedCluster(8)
        sizes = [100.0] * 16
        small.charge_estimation(sizes)
        big.charge_estimation(sizes)
        assert big.planning_time < small.planning_time

    def test_partitioning_grows_with_n(self):
        small = SimulatedCluster(2)
        big = SimulatedCluster(16)
        small.charge_partitioning(100)
        big.charge_partitioning(100)
        assert big.planning_time > small.planning_time

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            SimulatedCluster(0)


class TestReport:
    def test_parallel_time_composition(self):
        cluster = SimulatedCluster(2)
        cluster.charge_planning(5.0)
        cluster.charge_unit(0, steps=10, block_size=0)
        report = cluster.report()
        assert report.parallel_time == pytest.approx(
            report.planning_time + report.makespan + report.communication_time
        )

    def test_communication_share(self):
        cluster = SimulatedCluster(2)
        cluster.charge_unit(0, steps=100, block_size=0)
        cluster.ship_to(1, size=100)
        share = cluster.report().communication_share
        assert 0 < share < 1

    def test_balance_perfect(self):
        cluster = SimulatedCluster(2)
        cluster.charge_unit(0, steps=10, block_size=0)
        cluster.charge_unit(1, steps=10, block_size=0)
        assert cluster.report().balance == pytest.approx(1.0)

    def test_speedup_against(self):
        cluster = SimulatedCluster(2)
        cluster.charge_unit(0, steps=100, block_size=0)
        report = cluster.report()
        assert report.speedup_against(200.0) == pytest.approx(
            200.0 / report.parallel_time
        )

    def test_custom_cost_model(self):
        model = CostModel(step_cost=2.0)
        cluster = SimulatedCluster(1, model)
        cluster.charge_unit(0, steps=10, block_size=0)
        assert cluster.report().makespan == 20.0


class TestThreadBackend:
    def test_runs_all_tasks_in_worker_order(self):
        results = run_concurrently(
            [[1, 2], [3], [4, 5, 6]], execute=lambda x: x * 10
        )
        assert results == [[10, 20], [30], [40, 50, 60]]

    def test_empty_workers(self):
        assert run_concurrently([[], []], execute=lambda x: x) == [[], []]
