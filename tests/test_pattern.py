"""Tests for graph patterns, the DSL, pivots and components (§2, §5.2)."""

import pytest

from repro.graph import WILDCARD
from repro.pattern import (
    GraphPattern,
    PatternError,
    component_patterns,
    connected_components,
    format_pattern,
    parse_pattern,
    pattern_eccentricity,
    pattern_from_edges,
    pivot_vector,
)


class TestGraphPattern:
    def test_basic_construction(self):
        q = GraphPattern()
        q.add_node("x", "flight")
        q.add_node("y", "city")
        q.add_edge("x", "y", "to")
        assert q.num_nodes == 2
        assert q.num_edges == 1
        assert q.size == 3
        assert q.variables == ["x", "y"]

    def test_relabel_rejected(self):
        q = GraphPattern()
        q.add_node("x", "a")
        with pytest.raises(PatternError):
            q.add_node("x", "b")

    def test_edge_requires_nodes(self):
        q = GraphPattern()
        q.add_node("x", "a")
        with pytest.raises(PatternError):
            q.add_edge("x", "missing", "e")

    def test_duplicate_edge_noop(self):
        q = parse_pattern("x:a -e-> y:b")
        q.add_edge("x", "y", "e")
        assert q.num_edges == 1

    def test_rename(self):
        q = parse_pattern("x:a -e-> y:b")
        renamed = q.rename({"x": "u"})
        assert "u" in renamed and "x" not in renamed
        assert renamed.has_edge("u", "y", "e")

    def test_rename_must_be_injective(self):
        q = parse_pattern("x:a -e-> y:b")
        with pytest.raises(PatternError):
            q.rename({"x": "y"})

    def test_restricted_to(self):
        q = parse_pattern("x:a -e-> y:b -f-> z:c")
        sub = q.restricted_to(["x", "y"])
        assert set(sub.nodes()) == {"x", "y"}
        assert sub.num_edges == 1

    def test_is_tree(self, q2):
        assert q2.is_tree()
        cyclic = parse_pattern("x:a -e-> y:b; y -f-> x")
        assert not cyclic.is_tree()

    def test_forest_is_tree(self):
        forest = parse_pattern("x:a -e-> y:b; u:c -f-> v:d")
        assert forest.is_tree()

    def test_equality_and_hash(self):
        a = parse_pattern("x:a -e-> y:b")
        b = parse_pattern("x:a -e-> y:b")
        assert a == b
        assert hash(a) == hash(b)

    def test_pattern_from_edges(self):
        q = pattern_from_edges(
            [("x", "y", "e")], labels={"x": "a"}, isolated={"z": "c"}
        )
        assert q.label("x") == "a"
        assert q.label("y") == WILDCARD
        assert "z" in q


class TestParser:
    def test_chain(self):
        q = parse_pattern("x:a -e-> y:b -f-> z:c")
        assert q.has_edge("x", "y", "e")
        assert q.has_edge("y", "z", "f")

    def test_isolated_nodes(self):
        q = parse_pattern("x:R; y:R")
        assert q.num_nodes == 2
        assert q.num_edges == 0

    def test_wildcard_defaults(self):
        q = parse_pattern("x -e-> y")
        assert q.label("x") == WILDCARD

    def test_wildcard_edge(self):
        q = parse_pattern("x:a --> y:b")
        assert q.has_edge("x", "y", WILDCARD)

    def test_label_fixed_by_first_use(self):
        q = parse_pattern("x:a -e-> y:b; x -f-> z:c")
        assert q.label("x") == "a"

    def test_conflicting_relabel_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern("x:a -e-> y:b; x:c -f-> z:d")

    def test_empty_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern("   ")

    def test_primed_variables(self):
        q = parse_pattern("z:country; z':country")
        assert "z'" in q

    def test_format_roundtrip(self, q2):
        assert parse_pattern(format_pattern(q2)) == q2

    def test_format_roundtrip_isolated(self):
        q = parse_pattern("x:R; y:S")
        assert parse_pattern(format_pattern(q)) == q


class TestComponentsAndPivots:
    def test_q1_has_two_components(self, q1):
        assert len(connected_components(q1)) == 2

    def test_component_patterns(self, q1):
        comps = component_patterns(q1)
        assert len(comps) == 2
        assert all(c.num_nodes == 6 for c in comps)

    def test_eccentricity(self):
        q = parse_pattern("a:x -e-> b:x -e-> c:x")
        assert pattern_eccentricity(q, "b") == 1
        assert pattern_eccentricity(q, "a") == 2

    def test_pivot_vector_example9_q1(self, q1):
        """Example 9: PV(φ1) = ((x, 1), (y, 1))."""
        pv = pivot_vector(q1)
        assert pv.variables == ("x", "y")
        assert pv.radii == (1, 1)
        assert pv.arity == 2

    def test_pivot_vector_example9_q2(self, q2):
        """Example 9: PV(φ2) = ((x, 1))."""
        pv = pivot_vector(q2)
        assert pv.variables == ("x",)
        assert pv.radii == (1,)

    def test_pivot_vector_two_isolated_nodes(self):
        """Example 9: PV(φ4) = ((x, 0), (y, 0)) over pattern Q4."""
        q4 = parse_pattern("x:R; y:R")
        pv = pivot_vector(q4)
        assert pv.radii == (0, 0)

    def test_pivot_prefers_central_high_degree_node(self):
        star = parse_pattern("c:hub -e-> l1:leaf; c -e-> l2:leaf; c -e-> l3:leaf")
        pv = pivot_vector(star)
        assert pv.variables == ("c",)
        assert pv.radii == (1,)
