"""The shared-memory shard plane: arena round-trips, publish/attach,
shm ≡ pickle differentials, shipping accounting, segment lifecycle
(including worker crashes and resource-tracker silence), and the
oversubscription honour-or-warn contract.

Everything here complements the executor differential matrix in
``test_parallel_executors.py``, which CI re-runs wholesale with
``REPRO_SHIP_MODE=shm``.
"""

from __future__ import annotations

import glob
import os
import signal
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

import repro
from repro import ValidationSession
from repro.core import det_vio, generate_gfds
from repro.graph import GraphSnapshot, hash_partition, power_law_graph
from repro.matching import SubgraphMatcher
from repro.parallel import (
    FaultPlan,
    FaultPolicy,
    MultiprocessExecutor,
    ShardPlane,
    dis_val,
    estimate_workload,
    rep_val,
    shm_available,
    worker_graph,
)
from repro.parallel.executors import SHM_NAME_PREFIX, attach_shard_ref

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable on this host"
)

# Two-worker pools on a single-CPU runner trip the (intentional)
# oversubscription warning everywhere; the tests that pin the warning
# itself re-enable it locally.
pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


def workload(seed: int = 3):
    graph = power_law_graph(220, 560, seed=seed, domain_size=12)
    sigma = generate_gfds(graph, count=4, pattern_edges=2, seed=seed)
    return graph, sigma


def leaked_segments():
    """Shard-plane names still present in /dev/shm (should be none)."""
    return sorted(glob.glob(f"/dev/shm/{SHM_NAME_PREFIX}-*"))


@pytest.fixture(autouse=True)
def no_segment_residue():
    """Every test in this module must leave /dev/shm clean."""
    before = leaked_segments()
    yield
    assert leaked_segments() == before


def quiet_session(*args, **kwargs):
    """A process-backed session without the 1-CPU oversubscription noise."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return ValidationSession(*args, **kwargs)


class TestArena:
    def test_roundtrip_preserves_primary_state(self):
        graph, _ = workload()
        snap = GraphSnapshot(graph)
        buffer = bytearray(snap.arena_nbytes())
        layout = snap.write_arena(buffer)
        mapped = GraphSnapshot.from_arena(
            buffer, layout, snap.identity_state()
        )
        assert mapped.mapped and not snap.mapped
        assert mapped.node_ids == snap.node_ids
        for field in GraphSnapshot.ARENA_FIELDS:
            assert list(getattr(mapped, field)) == list(getattr(snap, field))
        assert sorted(mapped.edges()) == sorted(snap.edges())

    def test_mapped_snapshot_matches_identically(self):
        graph, sigma = workload(seed=11)
        snap = GraphSnapshot(graph)
        buffer = bytearray(snap.arena_nbytes())
        mapped = GraphSnapshot.from_arena(
            buffer, snap.write_arena(buffer), snap.identity_state()
        )
        for gfd in sigma:
            def key(m):
                return sorted(m.items(), key=repr)
            assert sorted(
                map(key, SubgraphMatcher(gfd.pattern, snap).matches())
            ) == sorted(
                map(key, SubgraphMatcher(gfd.pattern, mapped).matches())
            )

    def test_materialise_detaches_from_buffer(self):
        graph, _ = workload()
        snap = GraphSnapshot(graph)
        buffer = bytearray(snap.arena_nbytes())
        mapped = GraphSnapshot.from_arena(
            buffer, snap.write_arena(buffer), snap.identity_state()
        )
        private = mapped.materialise()
        assert not private.mapped
        buffer[:] = bytes(len(buffer))  # scribble over the arena
        assert sorted(private.edges()) == sorted(snap.edges())

    def test_apply_delta_demotes_mapped_snapshot(self):
        graph, _ = workload()
        snap = GraphSnapshot(graph)
        buffer = bytearray(snap.arena_nbytes())
        mapped = GraphSnapshot.from_arena(
            buffer, snap.write_arena(buffer), snap.identity_state()
        )
        src = next(iter(graph.nodes()))
        graph.add_edge(src, src, "delta-probe")
        mapped.apply_delta([("edge+", src, src, "delta-probe")])
        assert not mapped.mapped  # demoted to private storage
        buffer[:] = bytes(len(buffer))  # the arena is no longer referenced
        assert sorted(mapped.edges()) == sorted(graph.edges())


@needs_shm
class TestShardPlane:
    def test_publish_attach_roundtrips_the_shard(self):
        graph, sigma = workload()
        units = estimate_workload(sigma, graph)
        shard = worker_graph(graph, units[:3])
        plane = ShardPlane()
        try:
            ref, segment_bytes = plane.publish(0, shard)
            assert ref[0] == "shm" and segment_bytes > 0
            assert all(
                name.startswith(SHM_NAME_PREFIX)
                for name in plane.segment_names()
            )
            attached, segment = attach_shard_ref(ref)
            try:
                assert attached == shard  # labels, attrs, edges — all of it
                assert attached.snapshot().mapped
            finally:
                attached.drop_snapshot_cache()
                segment.close()
        finally:
            plane.close()

    def test_republish_retires_previous_segment(self):
        graph, sigma = workload()
        shard = worker_graph(graph, estimate_workload(sigma, graph)[:2])
        plane = ShardPlane()
        try:
            first_ref, _ = plane.publish(0, shard)
            plane.publish(0, shard)
            assert len(plane) == 1
            with pytest.raises(FileNotFoundError):
                attach_shard_ref(first_ref)
        finally:
            plane.close()

    def test_close_unlinks_names(self):
        graph, sigma = workload()
        shard = worker_graph(graph, estimate_workload(sigma, graph)[:2])
        plane = ShardPlane()
        ref, _ = plane.publish(0, shard)
        plane.close()
        plane.close()  # idempotent
        with pytest.raises(FileNotFoundError):
            attach_shard_ref(ref)


@needs_shm
class TestShmPickleDifferential:
    """shm and pickle transports must be observationally identical."""

    def test_rep_val_agrees(self):
        graph, sigma = workload()
        expected = det_vio(sigma, graph)
        runs = {
            mode: rep_val(
                sigma, graph, n=2, executor="process", processes=2,
                ship_mode=mode,
            )
            for mode in ("pickle", "shm")
        }
        for run in runs.values():
            assert run.violations == expected
        assert runs["pickle"].report == runs["shm"].report

    def test_dis_val_agrees(self):
        graph, sigma = workload(seed=11)
        expected = det_vio(sigma, graph)
        fragmentation = hash_partition(graph, 2, seed=11)
        runs = {
            mode: dis_val(
                sigma, fragmentation, executor="process", processes=2,
                ship_mode=mode,
            )
            for mode in ("pickle", "shm")
        }
        for run in runs.values():
            assert run.violations == expected
        assert runs["pickle"].report == runs["shm"].report

    def test_discovery_mines_identical_rules(self):
        graph, _ = workload()
        results = {}
        for mode in ("pickle", "shm"):
            with quiet_session(
                graph, [], executor="process", processes=2, ship_mode=mode,
            ) as session:
                results[mode] = session.discover(
                    min_support=4, max_edges=2, n=2
                )
        pickle_run, shm_run = results["pickle"], results["shm"]
        assert [
            (m.gfd.name, m.support, m.confidence) for m in pickle_run.rules
        ] == [
            (m.gfd.name, m.support, m.confidence) for m in shm_run.rules
        ]
        assert pickle_run.violations == shm_run.violations


@needs_shm
class TestSessionShipping:
    """Accounting: mapped volume is not shipped volume."""

    def test_warm_sequence_full_reuse_delta(self):
        graph, sigma = workload()
        with quiet_session(
            graph, sigma, executor="process", processes=2, ship_mode="shm",
        ) as session:
            cold = session.validate(n=2)
            assert cold.shipping.full == 2
            assert cold.shipping.mapped == 2
            assert cold.shipping.mapped_bytes > 0
            assert cold.shipping.shard_bytes == 0  # nothing pickled
            assert len(leaked_segments()) == 2  # live, published segments

            warm = session.validate(n=2)
            assert warm.shipping.reused == 2
            assert warm.shipping.mapped == 0
            assert warm.shipping.mapped_bytes == 0

            # The op must touch a node resident in some slot's shard,
            # else every slot legitimately reports "reuse" (the edge is
            # invisible to its blocks).  Any unit's block node qualifies.
            units = estimate_workload(sigma, graph)
            src = next(iter(units[0].block_nodes))
            session.update([("edge+", src, src, "self-probe")])
            patched = session.validate(n=2)
            assert patched.violations == det_vio(sigma, graph)
            assert patched.shipping.mapped == 0
            assert patched.shipping.delta + patched.shipping.reused == 2
            assert patched.shipping.delta >= 1
            # Delta shipping demotes mapped shards: every slot that got a
            # delta had its segment retired on the spot.
            assert len(leaked_segments()) <= 2 - patched.shipping.delta
        assert leaked_segments() == []

    def test_pickle_mode_never_maps(self):
        graph, sigma = workload()
        with quiet_session(
            graph, sigma, executor="process", processes=2, ship_mode="pickle",
        ) as session:
            run = session.validate(n=2)
            assert run.shipping.mapped == 0
            assert run.shipping.mapped_bytes == 0
            assert run.shipping.shard_bytes > 0
            assert leaked_segments() == []


@needs_shm
class TestSegmentLifecycle:
    def test_shutdown_unlinks_everything(self):
        graph, sigma = workload()
        session = quiet_session(
            graph, sigma, executor="process", processes=2, ship_mode="shm",
        )
        try:
            session.validate(n=2)
            assert len(leaked_segments()) == 2
        finally:
            session.close()
        assert leaked_segments() == []
        # The session stays usable: the next run starts cold again.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            rerun = session.validate(n=2)
        assert rerun.shipping.mapped == 2
        session.close()
        assert leaked_segments() == []

    def test_worker_crash_recovers_with_no_residue(self):
        """A SIGKILL'd worker is respawned mid-run; /dev/shm stays clean.

        Under the default :class:`FaultPolicy` the supervised pool
        detects the pipe EOF, respawns the slot, re-ships its shard and
        requeues the in-flight units — the run completes with the
        fault-free answer and the dead worker's segments are retired,
        not leaked.
        """
        graph, sigma = workload()
        expected = det_vio(sigma, graph)
        session = quiet_session(
            graph, sigma, executor="process", processes=2, ship_mode="shm",
            fault_policy=FaultPolicy(backoff=0.01),
        )
        try:
            session.validate(n=2)
            victim = session._pool._procs[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            run = session.validate(n=2)
            assert run.violations == expected
            assert run.shipping.faults is not None
            assert run.shipping.faults.crashes >= 1
            assert run.shipping.faults.respawns >= 1
            # One resident segment per slot, recovery or not.
            assert len(leaked_segments()) == 2
        finally:
            session.close()
        assert leaked_segments() == []

    def test_worker_crash_without_retries_fails_clean(self):
        """``max_retries=0`` pins the old fail-stop contract — and even
        the failing path must leave /dev/shm spotless."""
        graph, sigma = workload()
        session = quiet_session(
            graph, sigma, executor="process", processes=2, ship_mode="shm",
            fault_policy=FaultPolicy(max_retries=0, backoff=0.01),
        )
        try:
            session.validate(n=2)
            victim = session._pool._procs[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            with pytest.raises(RuntimeError, match="lost a process"):
                session.validate(n=2)
            # The failed run tore the pool down — plane included.
            assert leaked_segments() == []
        finally:
            session.close()
        assert leaked_segments() == []

    def test_death_mid_attach_recovers_with_no_residue(self):
        """A worker dying *between* shm attach and first use is the
        lifecycle's nastiest window: the segment is mapped in a process
        that will never unmap it deliberately.  Recovery must re-ship,
        re-attach cleanly and leave zero residue."""
        graph, sigma = workload()
        expected = det_vio(sigma, graph)
        plan = FaultPlan(die_mid_attach=((0, 1),))
        session = quiet_session(
            graph, sigma, executor="process", processes=2, ship_mode="shm",
            fault_policy=FaultPolicy(plan=plan, backoff=0.01),
        )
        try:
            run = session.validate(n=2)
            assert run.violations == expected
            assert run.shipping.faults.crashes >= 1
            assert len(leaked_segments()) == 2
            # The respawned worker re-attached for real.  Its slot's
            # cache mirror was dropped (not re-registered) by recovery,
            # so the warm rerun re-ships that one slot full and reuses
            # the survivor's resident shard.
            warm = session.validate(n=2)
            assert warm.violations == expected
            assert warm.shipping.full == 1
            assert warm.shipping.reused == 1
        finally:
            session.close()
        assert leaked_segments() == []

    def test_death_mid_unit_reattaches_cleanly(self):
        """An injected hard exit mid-batch (after attach, between units)
        must requeue onto a respawned worker that re-attaches the same
        published segment — and retire the replaced attachment without
        dropping mapped buffers to the GC."""
        graph, sigma = workload()
        expected = det_vio(sigma, graph)
        plan = FaultPlan(crashes=((0, 1, 1),))  # die before its 2nd unit
        session = quiet_session(
            graph, sigma, executor="process", processes=2, ship_mode="shm",
            fault_policy=FaultPolicy(plan=plan, backoff=0.01),
        )
        try:
            run = session.validate(n=2)
            assert run.violations == expected
            assert run.shipping.faults.crashes >= 1
            assert run.shipping.faults.retried_units > 0
            assert len(leaked_segments()) == 2
            warm = session.validate(n=2)
            assert warm.violations == expected
            assert warm.shipping.full == 1  # recovered slot went cold
            assert warm.shipping.reused == 1
        finally:
            session.close()
        assert leaked_segments() == []

    def test_no_resource_tracker_noise(self, tmp_path):
        """A full shm session in a clean interpreter must exit silently.

        Worker attachments are deliberately invisible to the resource
        tracker (see ``_attach_untracked``); a stray registration shows
        up here as tracker stderr — either a leaked-resource warning or
        the double-unregister ``KeyError`` traceback.
        """
        src_dir = Path(repro.__file__).resolve().parents[1]
        code = (
            "import warnings\n"
            "from repro import ValidationSession\n"
            "from repro.core import generate_gfds\n"
            "from repro.graph import power_law_graph\n"
            "graph = power_law_graph(220, 560, seed=3, domain_size=12)\n"
            "sigma = generate_gfds(graph, count=4, pattern_edges=2, seed=3)\n"
            "warnings.simplefilter('ignore', RuntimeWarning)\n"
            "with ValidationSession(graph, sigma, executor='process',\n"
            "                       processes=2, ship_mode='shm') as s:\n"
            "    s.validate(n=2)\n"
            "    s.validate(n=2)\n"
        )
        env = dict(os.environ, PYTHONPATH=str(src_dir))
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "resource_tracker" not in result.stderr, result.stderr
        assert "KeyError" not in result.stderr, result.stderr
        assert "leaked" not in result.stderr, result.stderr


class TestShipModeValidation:
    def test_unknown_mode_rejected_everywhere(self):
        graph, sigma = workload()
        with pytest.raises(ValueError, match="ship_mode"):
            MultiprocessExecutor(ship_mode="carrier-pigeon")
        with pytest.raises(ValueError, match="ship_mode"):
            ValidationSession(graph, sigma, ship_mode="carrier-pigeon")

    def test_explicit_shm_rejected_when_unavailable(self, monkeypatch):
        from repro.parallel import executors

        graph, sigma = workload()
        monkeypatch.setattr(executors, "shm_available", lambda: False)
        with pytest.raises(ValueError, match="shared memory"):
            MultiprocessExecutor(ship_mode="shm")
        monkeypatch.setattr(repro.session, "shm_available", lambda: False)
        with pytest.raises(ValueError, match="shared memory"):
            ValidationSession(graph, sigma, ship_mode="shm")

    def test_auto_falls_back_without_shm(self, monkeypatch):
        from repro.parallel import executors

        monkeypatch.setattr(executors, "shm_available", lambda: False)
        pool = MultiprocessExecutor(ship_mode="auto")
        graph, sigma = workload()
        shard = worker_graph(graph, estimate_workload(sigma, graph)[:3])
        assert not pool._map_shard(shard)


class TestOversubscription:
    """processes=N above the CPU count is honoured — loudly."""

    def test_persistent_pool_warns_and_honours(self):
        from repro.parallel.executors import usable_cpus

        size = usable_cpus() + 2
        pool = MultiprocessExecutor(processes=size)
        try:
            with pytest.warns(RuntimeWarning, match="oversubscribed"):
                pool.start()
            assert len(pool.worker_pids()) == size
        finally:
            pool.shutdown()

    def test_fitting_pool_stays_silent(self):
        pool = MultiprocessExecutor(processes=1)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                pool.start()
            assert len(pool.worker_pids()) == 1
        finally:
            pool.shutdown()

    def test_oneshot_run_warns_and_honours(self):
        from repro.parallel.executors import usable_cpus

        graph, sigma = workload()
        expected = det_vio(sigma, graph)
        n = usable_cpus() + 1
        with pytest.warns(RuntimeWarning, match="oversubscribed"):
            run = rep_val(
                sigma, graph, n=n, executor="process", processes=n
            )
        assert run.violations == expected
