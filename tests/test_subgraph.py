"""Tests for neighbourhood extraction (data blocks, Section 5.2)."""

import pytest

from repro.graph import (
    PropertyGraph,
    connected_components,
    eccentricity,
    graph_from_edges,
    k_hop_nodes,
    k_hop_size,
    k_hop_subgraph,
    undirected_distances,
)


@pytest.fixture
def path5():
    """A directed path 0 → 1 → 2 → 3 → 4."""
    g = PropertyGraph()
    for i in range(5):
        g.add_node(i, "n")
    for i in range(4):
        g.add_edge(i, i + 1, "e")
    return g


class TestKHop:
    def test_zero_hops(self, path5):
        assert k_hop_nodes(path5, [2], 0) == {2}

    def test_hops_ignore_direction(self, path5):
        assert k_hop_nodes(path5, [2], 1) == {1, 2, 3}

    def test_full_cover(self, path5):
        assert k_hop_nodes(path5, [2], 2) == {0, 1, 2, 3, 4}

    def test_multiple_seeds(self, path5):
        assert k_hop_nodes(path5, [0, 4], 1) == {0, 1, 3, 4}

    def test_subgraph_contains_induced_edges(self, path5):
        block = k_hop_subgraph(path5, [2], 1)
        assert set(block.nodes()) == {1, 2, 3}
        assert block.num_edges == 2

    def test_size_matches_materialised_block(self, path5):
        block = k_hop_subgraph(path5, [2], 1)
        assert k_hop_size(path5, [2], 1) == block.size


class TestComponents:
    def test_single_component(self, path5):
        assert len(connected_components(path5)) == 1

    def test_two_components(self):
        g = graph_from_edges([("a", "e", "b"), ("c", "e", "d")])
        comps = connected_components(g)
        assert sorted(sorted(c) for c in comps) == [["a", "b"], ["c", "d"]]

    def test_isolated_nodes(self):
        g = PropertyGraph()
        g.add_node(1, "x")
        g.add_node(2, "y")
        assert len(connected_components(g)) == 2


class TestDistances:
    def test_eccentricity_center_vs_end(self, path5):
        assert eccentricity(path5, 2) == 2
        assert eccentricity(path5, 0) == 4

    def test_singleton_eccentricity(self):
        g = PropertyGraph()
        g.add_node("solo", "x")
        assert eccentricity(g, "solo") == 0

    def test_undirected_distances(self, path5):
        dist = undirected_distances(path5, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_distances_cover_component_only(self):
        g = graph_from_edges([("a", "e", "b"), ("c", "e", "d")])
        dist = undirected_distances(g, "a")
        assert "c" not in dist
