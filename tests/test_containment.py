"""Tests for pattern containment / isomorphism grouping."""

from repro.pattern import (
    are_isomorphic,
    containment_order,
    contains,
    group_isomorphic,
    isomorphism_fingerprint,
    parse_pattern,
    shared_edge_types,
)


EDGE = parse_pattern("a:x -e-> b:y")
EDGE_RENAMED = parse_pattern("u:x -e-> v:y")
CHAIN = parse_pattern("a:x -e-> b:y -f-> c:z")
TRIANGLE = parse_pattern("a:n -e-> b:n; b -e-> c:n; c -e-> a")
SQUARE = parse_pattern("a:n -e-> b:n; b -e-> c:n; c -e-> d:n; d -e-> a")


class TestIsomorphism:
    def test_renamed_patterns_isomorphic(self):
        assert are_isomorphic(EDGE, EDGE_RENAMED)

    def test_size_mismatch(self):
        assert not are_isomorphic(EDGE, CHAIN)

    def test_shape_mismatch(self):
        assert not are_isomorphic(TRIANGLE, SQUARE)

    def test_fingerprint_invariance(self):
        assert isomorphism_fingerprint(EDGE) == isomorphism_fingerprint(EDGE_RENAMED)

    def test_fingerprint_separates_labels(self):
        other = parse_pattern("a:x -e-> b:DIFFERENT")
        assert isomorphism_fingerprint(EDGE) != isomorphism_fingerprint(other)


class TestContainment:
    def test_edge_contained_in_chain(self):
        assert contains(CHAIN, EDGE)
        assert not contains(EDGE, CHAIN)

    def test_containment_order_pairs(self):
        pairs = containment_order([EDGE, CHAIN])
        assert (0, 1) in pairs
        assert (1, 0) not in pairs

    def test_self_pairs_omitted(self):
        assert containment_order([EDGE]) == []


class TestGrouping:
    def test_group_isomorphic(self):
        groups = group_isomorphic([EDGE, CHAIN, EDGE_RENAMED])
        as_sets = sorted(sorted(g) for g in groups)
        assert as_sets == [[0, 2], [1]]

    def test_all_distinct(self):
        groups = group_isomorphic([EDGE, CHAIN, TRIANGLE])
        assert len(groups) == 3

    def test_shared_edge_types(self):
        counts = shared_edge_types([EDGE, CHAIN])
        assert counts[("x", "e", "y")] == 2
        assert counts[("y", "f", "z")] == 1
