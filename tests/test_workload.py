"""Tests for the workload model (Section 5.2) and estimation (§6.1)."""


from repro.core import generate_gfds
from repro.parallel import (
    SimulatedCluster,
    build_shared_groups,
    estimate_workload,
    singleton_groups,
    total_weight,
    unit_weight,
)
from repro.parallel.workload import block_of, block_size_of
from repro.graph.partition import hash_partition


class TestUnitWeight:
    def test_monotone_in_block_size(self):
        assert unit_weight(10, 2) < unit_weight(20, 2)

    def test_exponent_tracks_pattern_edges(self):
        assert unit_weight(10, 1) == 10.0
        assert unit_weight(10, 2) == 100.0

    def test_exponent_capped(self):
        assert unit_weight(10, 99) == 10.0 ** 3


class TestEstimation:
    def test_one_unit_per_candidate(self, phi2, g3):
        units = estimate_workload([phi2], g3)
        assert len(units) == 1  # one country
        unit = units[0]
        assert unit.pivot_assignment == {"x": "au"}
        assert unit.block_nodes == frozenset({"au", "canberra"})

    def test_block_size_counts_nodes_and_edges(self, phi2, g3):
        unit = estimate_workload([phi2], g3)[0]
        assert unit.block_size == 3  # 2 nodes + 1 edge

    def test_example10_symmetric_dedup(self, phi1, g1):
        """Example 10/11: isomorphic flight components deduplicate pairs."""
        units = estimate_workload([phi1], g1)
        assert len(units) == 1  # (flight1, flight2) only, not both orders

    def test_workunit_block_is_paperexample_g1(self, phi1, g1):
        """Example 11: the unit for (flight1, flight2) covers all of G1
        (22 nodes + edges)."""
        unit = estimate_workload([phi1], g1)[0]
        assert unit.block_size == g1.size == 22

    def test_shared_groups_reduce_units(self, small_power_law):
        sigma = generate_gfds(small_power_law, count=6, pattern_edges=2, seed=1)
        sigma = sigma + sigma  # duplicate rule set → same patterns
        shared = estimate_workload(
            sigma, small_power_law, groups=build_shared_groups(sigma)
        )
        solo = estimate_workload(
            sigma, small_power_law, groups=singleton_groups(sigma)
        )
        assert len(shared) < len(solo)

    def test_estimation_cost_charged(self, phi1, g1):
        cluster = SimulatedCluster(4)
        estimate_workload([phi1], g1, cluster=cluster)
        assert cluster.planning_time > 0

    def test_fragment_sizes_sum_to_at_most_block(self, small_power_law):
        sigma = generate_gfds(small_power_law, count=3, pattern_edges=2, seed=2)
        fr = hash_partition(small_power_law, 4)
        units = estimate_workload(sigma, small_power_law, fragmentation=fr)
        for unit in units[:50]:
            local_total = sum(unit.fragment_sizes.values())
            # Cross-fragment edges are owned by neither side's count.
            assert local_total <= unit.block_size
            assert unit.missing_size(0) >= 0

    def test_total_weight(self, phi2, g3):
        units = estimate_workload([phi2], g3)
        assert total_weight(units) == sum(u.weight for u in units)


class TestBlockHelpers:
    def test_block_of_uses_radii(self, phi1, g1):
        pivot = phi1.pivot
        nodes = block_of(g1, pivot, {"x": "flight1", "y": "flight2"})
        assert nodes == set(g1.nodes())

    def test_block_size_of(self, g3):
        assert block_size_of(g3, set(g3.nodes())) == g3.size
