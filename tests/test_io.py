"""Tests for graph (de)serialisation."""

import pytest

from repro.graph import (
    GraphError,
    PropertyGraph,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    power_law_graph,
    save_graph,
)


def test_roundtrip_file(tmp_path):
    g = power_law_graph(40, 90, seed=3)
    path = tmp_path / "g.jsonl"
    save_graph(g, path)
    assert load_graph(path) == g


def test_roundtrip_preserves_attributes(tmp_path):
    g = PropertyGraph()
    g.add_node("a", "person", {"name": "Ann", "age": 30})
    g.add_node("b", "person")
    g.add_edge("a", "b", "knows")
    path = tmp_path / "g.jsonl"
    save_graph(g, path)
    loaded = load_graph(path)
    assert loaded.get_attr("a", "age") == 30
    assert loaded.has_edge("a", "b", "knows")


def test_load_skips_blank_lines(tmp_path):
    path = tmp_path / "g.jsonl"
    path.write_text('{"n": 1, "l": "x"}\n\n{"n": 2, "l": "y"}\n')
    g = load_graph(path)
    assert g.num_nodes == 2


def test_load_rejects_edge_before_node(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"s": 1, "d": 2, "l": "e"}\n')
    with pytest.raises(GraphError, match="line 1"):
        load_graph(path)


def test_load_rejects_unknown_record(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"what": true}\n')
    with pytest.raises(GraphError):
        load_graph(path)


def test_dict_roundtrip():
    g = power_law_graph(25, 50, seed=1)
    assert graph_from_dict(graph_to_dict(g)) == g
