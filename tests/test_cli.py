"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import format_rule_file, main, parse_rule_file
from repro.graph import PropertyGraph, save_graph

RULES_TEXT = """
# unique capitals
[unique-capital]
pattern: x:country -capital-> y:city; x -capital-> z:city
then: y.val = z.val

[flagged]
pattern: a:account
when: a.kind = 'bot'
then: a.is_fake = 'true'
"""


@pytest.fixture
def graph_file(tmp_path):
    g = PropertyGraph()
    g.add_node("au", "country", {"val": "Australia"})
    g.add_node("c1", "city", {"val": "Canberra"})
    g.add_node("c2", "city", {"val": "Melbourne"})
    g.add_edge("au", "c1", "capital")
    g.add_edge("au", "c2", "capital")
    path = tmp_path / "g.jsonl"
    save_graph(g, path)
    return path


@pytest.fixture
def rules_file(tmp_path):
    path = tmp_path / "rules.gfd"
    path.write_text(RULES_TEXT)
    return path


def rule_key(gfd):
    """Value identity of a GFD for round-trip comparison."""
    return (gfd.name, gfd.pattern.signature(), gfd.lhs, gfd.rhs)


class TestRuleFileRoundTrip:
    """Satellite: mined and generated rules survive the rule-file format.

    ``format_rule_file`` → ``parse_rule_file`` must reproduce equivalent
    GFDs — same name, pattern signature, and lhs/rhs literal tuples —
    over property-style sweeps of generated and mined rule sets.
    """

    @pytest.mark.parametrize("seed", [1, 5, 9, 14])
    def test_generated_rules_round_trip(self, seed):
        from repro import generate_gfds, power_law_graph

        graph = power_law_graph(160, 360, seed=seed, domain_size=8)
        sigma = generate_gfds(graph, count=8, pattern_edges=3, seed=seed)
        again = parse_rule_file(format_rule_file(sigma))
        assert [rule_key(r) for r in again] == [rule_key(r) for r in sigma]

    @pytest.mark.parametrize("seed", [2, 6])
    def test_mined_rules_round_trip(self, seed):
        from repro import discover_gfds, power_law_graph

        graph = power_law_graph(
            150, 340, seed=seed, domain_size=6,
            node_labels=["person", "city"], edge_labels=["knows", "in"],
        )
        mined = discover_gfds(graph, min_support=3, min_confidence=0.8)
        assert mined  # the sweep must exercise a non-empty mined set
        rules = [m.gfd for m in mined]
        again = parse_rule_file(format_rule_file(rules))
        assert [rule_key(r) for r in again] == [rule_key(r) for r in rules]

    def test_empty_lhs_and_constants_round_trip(self):
        rules = parse_rule_file(RULES_TEXT)
        twice = parse_rule_file(format_rule_file(
            parse_rule_file(format_rule_file(rules))
        ))
        assert [rule_key(r) for r in twice] == [rule_key(r) for r in rules]


class TestRuleFileFormat:
    def test_parse(self):
        rules = parse_rule_file(RULES_TEXT)
        assert [r.name for r in rules] == ["unique-capital", "flagged"]
        assert rules[0].has_empty_lhs
        assert len(rules[1].lhs) == 1

    def test_roundtrip(self):
        rules = parse_rule_file(RULES_TEXT)
        again = parse_rule_file(format_rule_file(rules))
        assert [r.name for r in again] == [r.name for r in rules]
        assert [r.lhs for r in again] == [r.lhs for r in rules]
        assert [r.rhs for r in again] == [r.rhs for r in rules]

    def test_missing_pattern_rejected(self):
        with pytest.raises(ValueError, match="needs"):
            parse_rule_file("[x]\nthen: a.b = 1\n")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="unrecognised"):
            parse_rule_file("what is this")


class TestValidateCommand:
    def test_violations_found(self, graph_file, rules_file):
        out = io.StringIO()
        code = main(["validate", str(graph_file), str(rules_file)], out=out)
        assert code == 1  # violations present
        assert "unique-capital" in out.getvalue()

    def test_json_output(self, graph_file, rules_file):
        out = io.StringIO()
        main(["validate", str(graph_file), str(rules_file), "--json"], out=out)
        payload = json.loads(out.getvalue())
        assert payload
        assert payload[0]["rule"] == "unique-capital"

    def test_rejects_negative_limit(self, graph_file, rules_file):
        # Satellite: --limit -1 used to be accepted and mangle the
        # "... and N more" arithmetic; argparse now rejects negatives.
        with pytest.raises(SystemExit):
            main(["validate", str(graph_file), str(rules_file),
                  "--limit", "-1"], out=io.StringIO())

    def test_limit_zero_prints_no_witnesses(self, graph_file, rules_file):
        out = io.StringIO()
        code = main(["validate", str(graph_file), str(rules_file),
                     "--limit", "0"], out=out)
        assert code == 1  # violations still detected and counted
        assert "violation(s)" in out.getvalue()
        assert "more" in out.getvalue()  # all witnesses elided

    def test_clean_graph_exit_zero(self, tmp_path, rules_file):
        g = PropertyGraph()
        g.add_node("x", "country", {"val": "A"})
        path = tmp_path / "clean.jsonl"
        save_graph(g, path)
        out = io.StringIO()
        assert main(["validate", str(path), str(rules_file)], out=out) == 0

    def test_malformed_fault_plan_rejected_at_parse(
        self, graph_file, rules_file, capsys
    ):
        # The plan must fail on every subcommand — including sequential
        # runs that would never consult it — so it is an argparse type.
        with pytest.raises(SystemExit):
            main(["validate", str(graph_file), str(rules_file),
                  "--fault-plan", '{"bogus": 1}'], out=io.StringIO())
        assert "unknown fault-plan key" in capsys.readouterr().err

    def test_fault_flags_build_a_policy(self, graph_file, rules_file):
        from repro.cli import _fault_policy, build_parser

        args = build_parser().parse_args([
            "validate", str(graph_file), str(rules_file),
            "--fault-retries", "4", "--fault-backoff", "0.2",
            "--unit-deadline", "9.5", "--degrade-floor", "2",
            "--fault-plan", '{"crashes": [[0, 0, 1]]}',
        ])
        policy = _fault_policy(args)
        assert policy.max_retries == 4
        assert policy.backoff == pytest.approx(0.2)
        assert policy.unit_deadline == pytest.approx(9.5)
        assert policy.degrade_floor == 2
        assert policy.plan.crashes == ((0, 0, 1),)
        # and no flags at all means "library defaults decide"
        bare = build_parser().parse_args(
            ["validate", str(graph_file), str(rules_file)]
        )
        assert _fault_policy(bare) is None


class TestReasonCommand:
    def test_satisfiable_rules(self, rules_file):
        out = io.StringIO()
        assert main(["reason", str(rules_file)], out=out) == 0
        assert "satisfiable: True" in out.getvalue()

    def test_unsatisfiable_rules(self, tmp_path):
        path = tmp_path / "bad.gfd"
        path.write_text(
            "[a]\npattern: x:t\nthen: x.A = 'c'\n"
            "[b]\npattern: x:t\nthen: x.A = 'd'\n"
        )
        out = io.StringIO()
        assert main(["reason", str(path)], out=out) == 1
        assert "satisfiable: False" in out.getvalue()

    def test_reports_redundant(self, tmp_path):
        path = tmp_path / "red.gfd"
        path.write_text(
            "[a]\npattern: x:t\nwhen: x.A = 1\nthen: x.B = 2\n"
            "[dup]\npattern: x:t\nwhen: x.A = 1\nthen: x.B = 2\n"
        )
        out = io.StringIO()
        main(["reason", str(path)], out=out)
        assert "redundant" in out.getvalue()


class TestGenerateAndBench:
    def test_generate_writes_graph_and_rules(self, tmp_path):
        gpath = tmp_path / "synth.jsonl"
        rpath = tmp_path / "synth.gfd"
        out = io.StringIO()
        code = main(
            ["generate", str(gpath), "--nodes", "120", "--edges", "240",
             "--rules", "4", "--rules-output", str(rpath), "--seed", "3"],
            out=out,
        )
        assert code == 0
        assert gpath.exists() and rpath.exists()
        from repro.graph import load_graph

        g = load_graph(gpath)
        assert g.num_nodes == 120
        rules = parse_rule_file(rpath.read_text())
        assert len(rules) == 4

    def test_bench_runs_and_agrees(self, tmp_path):
        gpath = tmp_path / "synth.jsonl"
        rpath = tmp_path / "synth.gfd"
        main(["generate", str(gpath), "--nodes", "150", "--edges", "300",
              "--rules", "3", "--rules-output", str(rpath), "--seed", "4",
              "--domain", "10"], out=io.StringIO())
        out = io.StringIO()
        code = main(
            ["bench", str(gpath), str(rpath), "--workers", "4"], out=out
        )
        assert code == 0
        assert "repVal" in out.getvalue()
        assert "disVal" in out.getvalue()
        # Satellite: the shipping summary is no longer skipped when
        # --repeat is 1 — the final iteration is always reported.
        assert "shipping (final iteration)" in out.getvalue()

    def test_bench_process_reports_final_shipping(self, tmp_path):
        gpath = tmp_path / "synth.jsonl"
        rpath = tmp_path / "synth.gfd"
        main(["generate", str(gpath), "--nodes", "150", "--edges", "300",
              "--rules", "3", "--rules-output", str(rpath), "--seed", "4",
              "--domain", "10"], out=io.StringIO())
        out = io.StringIO()
        code = main(
            ["bench", str(gpath), str(rpath), "--workers", "3",
             "--executor", "process", "--processes", "2"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "shipping (final iteration):" in text
        assert "reused shard(s)" in text

    def test_bench_rejects_non_positive_counts(self, tmp_path):
        # Satellite: --repeat 0 used to be silently clamped to one
        # iteration; now argparse rejects it (and friends) outright.
        for flag in ("--repeat", "--workers", "--processes"):
            with pytest.raises(SystemExit):
                main(["bench", "g", "r", flag, "0"], out=io.StringIO())
            with pytest.raises(SystemExit):
                main(["bench", "g", "r", flag, "-3"], out=io.StringIO())


class TestDiscoverCommand:
    @pytest.fixture
    def mining_graph_file(self, tmp_path):
        g = PropertyGraph()
        for i in range(25):
            g.add_node(f"p{i}", "person", {"zip": f"z{i % 3}", "city": f"C{i % 3}"})
            g.add_node(f"c{i}", "city", {"zip": f"z{i % 3}", "city": f"C{i % 3}"})
            g.add_edge(f"p{i}", f"c{i}", "lives_in")
        path = tmp_path / "g.jsonl"
        save_graph(g, path)
        return path

    def test_discover_emits_rules(self, mining_graph_file):
        out = io.StringIO()
        code = main(["discover", str(mining_graph_file), "--support", "5"],
                    out=out)
        assert code == 0
        assert "pattern:" in out.getvalue()
        # Emitted rules must parse back.
        assert parse_rule_file(out.getvalue())

    def test_discover_flags_govern_mining(self, mining_graph_file):
        """--executor/--processes/--workers/--max-* drive mining itself
        (not just the confirmation pass) and leave the output unchanged."""
        baseline = io.StringIO()
        assert main(["discover", str(mining_graph_file), "--support", "5"],
                    out=baseline) == 0
        out = io.StringIO()
        code = main(
            ["discover", str(mining_graph_file), "--support", "5",
             "--executor", "process", "--processes", "2", "--workers", "3",
             "--max-edges", "2", "--max-matches", "500"],
            out=out,
        )
        assert code == 0
        # Same mined rules; only the accounting comments (executor,
        # per-phase wall-clock/shipping) legitimately differ.
        def strip(text):
            return [line for line in text.splitlines()
                    if not line.startswith("#")]

        assert strip(out.getvalue()) == strip(baseline.getvalue())
        assert "# verified (process):" in out.getvalue()
        # The process run reports its data path: per-phase byte counts
        # and the count/confirm resident-match replay.
        assert "unit-payload byte(s)" in out.getvalue()

    def test_discover_exit_2_on_confidence_one_inconsistency(
        self, mining_graph_file, monkeypatch
    ):
        """Mined-at-1.0 rules reporting violations is an internal
        inconsistency → exit 2 (mirrors cmd_bench's disagreement guard)."""
        from repro.core import make_violation
        from repro.session import DiscoveryRun, ValidationSession

        real = ValidationSession.discover

        def broken(self, **kwargs):
            run = real(self, **kwargs)
            assert run.rules and run.violations == set()
            exact = next(m for m in run.rules if m.confidence == 1.0)
            match = {v: "p0" for v in exact.gfd.pattern.variables}
            return DiscoveryRun(
                rules=run.rules,
                phases=run.phases,
                num_patterns=run.num_patterns,
                num_proposals=run.num_proposals,
                executor=run.executor,
                violations={make_violation(exact.gfd, match)},
            )

        monkeypatch.setattr(ValidationSession, "discover", broken)
        out = io.StringIO()
        code = main(["discover", str(mining_graph_file), "--support", "5"],
                    out=out)
        assert code == 2
        assert "ERROR" in out.getvalue()

    def test_discover_low_confidence_violations_exit_zero(self, tmp_path):
        """Rules mined below confidence 1.0 legitimately carry violations
        — that is not an inconsistency and must not flip the exit code."""
        g = PropertyGraph()
        for i in range(30):
            g.add_node(f"p{i}", "person", {"zip": "z1", "city": "C1"})
            g.add_node(f"c{i}", "city", {"zip": "z1", "city": "C1"})
            g.add_edge(f"p{i}", f"c{i}", "lives_in")
        g.set_attr("c0", "city", "WRONG")  # poison one pair
        path = tmp_path / "noisy.jsonl"
        save_graph(g, path)
        out = io.StringIO()
        code = main(
            ["discover", str(path), "--support", "5",
             "--confidence", "0.9"],
            out=out,
        )
        assert code == 0

    def test_discover_capped_confidence_one_exits_zero(self, tmp_path):
        """A rule mined at confidence 1.0 over a *capped* match set can
        legitimately be violated by uncounted matches — that must not
        trip the internal-inconsistency exit code."""
        g = PropertyGraph()
        for i in range(60):
            value = "c" if i < 30 else "d"
            g.add_node(f"p{i:02d}", "person", {"A": value})
            g.add_node(f"c{i:02d}", "city", None)
            g.add_edge(f"p{i:02d}", f"c{i:02d}", "lives_in")
        path = tmp_path / "capped.jsonl"
        save_graph(g, path)
        out = io.StringIO()
        code = main(
            ["discover", str(path), "--support", "5",
             "--confidence", "1.0", "--max-matches", "30"],
            out=out,
        )
        assert code == 0
        assert "ERROR" not in out.getvalue()
        assert "violation(s)" in out.getvalue()

    def test_discover_rejects_bad_counts(self, mining_graph_file):
        for flag in ("--workers", "--max-edges", "--max-matches"):
            with pytest.raises(SystemExit):
                main(["discover", str(mining_graph_file), flag, "0"],
                     out=io.StringIO())

    def test_discover_rejects_out_of_range_confidence(
        self, mining_graph_file
    ):
        # Satellite: --confidence used to accept any float (1.5, -0.1),
        # silently mining nothing or everything; now argparse rejects
        # values outside [0, 1] at parse time.
        for bad in ("1.5", "-0.1", "nan", "abc"):
            with pytest.raises(SystemExit):
                main(["discover", str(mining_graph_file),
                      "--confidence", bad], out=io.StringIO())
        # The boundary values stay legal.
        for ok in ("0", "1.0", "0.95"):
            code = main(["discover", str(mining_graph_file),
                         "--support", "5", "--confidence", ok],
                        out=io.StringIO())
            assert code == 0

    def test_discover_eval_mode_choices(self, mining_graph_file):
        with pytest.raises(SystemExit):
            main(["discover", str(mining_graph_file),
                  "--eval-mode", "bogus"], out=io.StringIO())
        outputs = {}
        for mode in ("auto", "factorised", "enumerate"):
            out = io.StringIO()
            code = main(["discover", str(mining_graph_file),
                         "--support", "5", "--eval-mode", mode], out=out)
            assert code == 0
            outputs[mode] = [line for line in out.getvalue().splitlines()
                             if not line.startswith("#")]
        # All three evaluation modes mine the same rules.
        assert outputs["auto"] == outputs["factorised"] \
            == outputs["enumerate"]

    def test_discover_reports_vf2_units(self, mining_graph_file):
        out = io.StringIO()
        assert main(["discover", str(mining_graph_file), "--support", "5",
                     "--eval-mode", "factorised"], out=out) == 0
        text = out.getvalue()
        count_line = next(line for line in text.splitlines()
                          if line.startswith("# count:"))
        assert "0 unit(s) ran VF2 enumeration" in count_line
