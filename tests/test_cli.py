"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import format_rule_file, main, parse_rule_file
from repro.core import parse_gfd
from repro.graph import PropertyGraph, save_graph

RULES_TEXT = """
# unique capitals
[unique-capital]
pattern: x:country -capital-> y:city; x -capital-> z:city
then: y.val = z.val

[flagged]
pattern: a:account
when: a.kind = 'bot'
then: a.is_fake = 'true'
"""


@pytest.fixture
def graph_file(tmp_path):
    g = PropertyGraph()
    g.add_node("au", "country", {"val": "Australia"})
    g.add_node("c1", "city", {"val": "Canberra"})
    g.add_node("c2", "city", {"val": "Melbourne"})
    g.add_edge("au", "c1", "capital")
    g.add_edge("au", "c2", "capital")
    path = tmp_path / "g.jsonl"
    save_graph(g, path)
    return path


@pytest.fixture
def rules_file(tmp_path):
    path = tmp_path / "rules.gfd"
    path.write_text(RULES_TEXT)
    return path


class TestRuleFileFormat:
    def test_parse(self):
        rules = parse_rule_file(RULES_TEXT)
        assert [r.name for r in rules] == ["unique-capital", "flagged"]
        assert rules[0].has_empty_lhs
        assert len(rules[1].lhs) == 1

    def test_roundtrip(self):
        rules = parse_rule_file(RULES_TEXT)
        again = parse_rule_file(format_rule_file(rules))
        assert [r.name for r in again] == [r.name for r in rules]
        assert [r.lhs for r in again] == [r.lhs for r in rules]
        assert [r.rhs for r in again] == [r.rhs for r in rules]

    def test_missing_pattern_rejected(self):
        with pytest.raises(ValueError, match="needs"):
            parse_rule_file("[x]\nthen: a.b = 1\n")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="unrecognised"):
            parse_rule_file("what is this")


class TestValidateCommand:
    def test_violations_found(self, graph_file, rules_file):
        out = io.StringIO()
        code = main(["validate", str(graph_file), str(rules_file)], out=out)
        assert code == 1  # violations present
        assert "unique-capital" in out.getvalue()

    def test_json_output(self, graph_file, rules_file):
        out = io.StringIO()
        main(["validate", str(graph_file), str(rules_file), "--json"], out=out)
        payload = json.loads(out.getvalue())
        assert payload
        assert payload[0]["rule"] == "unique-capital"

    def test_clean_graph_exit_zero(self, tmp_path, rules_file):
        g = PropertyGraph()
        g.add_node("x", "country", {"val": "A"})
        path = tmp_path / "clean.jsonl"
        save_graph(g, path)
        out = io.StringIO()
        assert main(["validate", str(path), str(rules_file)], out=out) == 0


class TestReasonCommand:
    def test_satisfiable_rules(self, rules_file):
        out = io.StringIO()
        assert main(["reason", str(rules_file)], out=out) == 0
        assert "satisfiable: True" in out.getvalue()

    def test_unsatisfiable_rules(self, tmp_path):
        path = tmp_path / "bad.gfd"
        path.write_text(
            "[a]\npattern: x:t\nthen: x.A = 'c'\n"
            "[b]\npattern: x:t\nthen: x.A = 'd'\n"
        )
        out = io.StringIO()
        assert main(["reason", str(path)], out=out) == 1
        assert "satisfiable: False" in out.getvalue()

    def test_reports_redundant(self, tmp_path):
        path = tmp_path / "red.gfd"
        path.write_text(
            "[a]\npattern: x:t\nwhen: x.A = 1\nthen: x.B = 2\n"
            "[dup]\npattern: x:t\nwhen: x.A = 1\nthen: x.B = 2\n"
        )
        out = io.StringIO()
        main(["reason", str(path)], out=out)
        assert "redundant" in out.getvalue()


class TestGenerateAndBench:
    def test_generate_writes_graph_and_rules(self, tmp_path):
        gpath = tmp_path / "synth.jsonl"
        rpath = tmp_path / "synth.gfd"
        out = io.StringIO()
        code = main(
            ["generate", str(gpath), "--nodes", "120", "--edges", "240",
             "--rules", "4", "--rules-output", str(rpath), "--seed", "3"],
            out=out,
        )
        assert code == 0
        assert gpath.exists() and rpath.exists()
        from repro.graph import load_graph

        g = load_graph(gpath)
        assert g.num_nodes == 120
        rules = parse_rule_file(rpath.read_text())
        assert len(rules) == 4

    def test_bench_runs_and_agrees(self, tmp_path):
        gpath = tmp_path / "synth.jsonl"
        rpath = tmp_path / "synth.gfd"
        main(["generate", str(gpath), "--nodes", "150", "--edges", "300",
              "--rules", "3", "--rules-output", str(rpath), "--seed", "4",
              "--domain", "10"], out=io.StringIO())
        out = io.StringIO()
        code = main(
            ["bench", str(gpath), str(rpath), "--workers", "4"], out=out
        )
        assert code == 0
        assert "repVal" in out.getvalue()
        assert "disVal" in out.getvalue()


class TestDiscoverCommand:
    def test_discover_emits_rules(self, tmp_path):
        g = PropertyGraph()
        for i in range(25):
            g.add_node(f"p{i}", "person", {"zip": f"z{i % 3}", "city": f"C{i % 3}"})
            g.add_node(f"c{i}", "city", {"zip": f"z{i % 3}", "city": f"C{i % 3}"})
            g.add_edge(f"p{i}", f"c{i}", "lives_in")
        path = tmp_path / "g.jsonl"
        save_graph(g, path)
        out = io.StringIO()
        code = main(["discover", str(path), "--support", "5"], out=out)
        assert code == 0
        assert "pattern:" in out.getvalue()
        # Emitted rules must parse back.
        assert parse_rule_file(out.getvalue())
