"""Tests for pattern-into-pattern embeddings (Section 4)."""

from repro.pattern import (
    embeddings,
    first_embedding,
    is_embeddable,
    parse_pattern,
)


Q8 = parse_pattern("x:tau -l-> y:tau; x -l-> z:tau; y -l-> z")
Q9 = parse_pattern(
    "x:tau -l-> y:tau; x -l-> z:tau; y -l-> z; y -l-> w:tau; z -l-> w"
)


class TestBasicEmbeddings:
    def test_q8_embeds_in_q9(self):
        """The Example 7 interaction: Q8 is a subgraph of Q9."""
        assert is_embeddable(Q8, Q9)

    def test_q9_does_not_embed_in_q8(self):
        assert not is_embeddable(Q9, Q8)

    def test_identity_embedding_exists(self):
        found = list(embeddings(Q8, Q8))
        assert {"x": "x", "y": "y", "z": "z"} in found

    def test_edge_labels_respected(self):
        p = parse_pattern("a:tau -m-> b:tau")
        assert not is_embeddable(p, Q8)  # Q8 has only l-edges

    def test_single_node_embeds_everywhere_compatible(self):
        node = parse_pattern("a:tau")
        assert len(list(embeddings(node, Q9))) == 4

    def test_label_mismatch(self):
        node = parse_pattern("a:sigma")
        assert not is_embeddable(node, Q9)

    def test_first_embedding_none_when_impossible(self):
        assert first_embedding(Q9, Q8) is None


class TestInjectivity:
    def test_two_nodes_need_two_targets(self):
        pair = parse_pattern("a:tau; b:tau")
        single = parse_pattern("x:tau")
        assert not is_embeddable(pair, single)
        assert is_embeddable(pair, Q8)

    def test_embedding_is_injective(self):
        pair = parse_pattern("a:tau; b:tau")
        for f in embeddings(pair, Q8):
            assert f["a"] != f["b"]


class TestWildcards:
    def test_wildcard_node_embeds_onto_concrete(self):
        wild = parse_pattern("a -l-> b")
        assert is_embeddable(wild, Q8)

    def test_concrete_does_not_embed_onto_wildcard(self):
        # A match of the wildcard host may bind any label, so mapping a
        # concrete node onto it would be unsound.
        concrete = parse_pattern("a:tau")
        wild_host = parse_pattern("x; y")
        assert not is_embeddable(concrete, wild_host)

    def test_wildcard_edge_embeds_onto_labelled(self):
        wild = parse_pattern("a:tau --> b:tau")
        assert is_embeddable(wild, Q8)

    def test_labelled_edge_does_not_embed_onto_wildcard_edge(self):
        host = parse_pattern("x:tau --> y:tau")
        labelled = parse_pattern("a:tau -l-> b:tau")
        assert not is_embeddable(labelled, host)


class TestSelfLoops:
    def test_self_loop_needs_self_loop(self):
        loop = parse_pattern("a:tau -l-> a")
        assert not is_embeddable(loop, Q8)
        host = parse_pattern("x:tau -l-> x")
        assert is_embeddable(loop, host)


class TestEnumeration:
    def test_count_of_edge_embeddings(self):
        edge = parse_pattern("a:tau -l-> b:tau")
        # Q8 has 3 l-edges, each giving exactly one embedding.
        assert len(list(embeddings(edge, Q8))) == 3

    def test_embeddings_distinct(self):
        edge = parse_pattern("a:tau -l-> b:tau")
        found = [tuple(sorted(f.items())) for f in embeddings(edge, Q9)]
        assert len(found) == len(set(found))
