"""Tests for the GFD workload generator (§7) and discovery (§8 ext.)."""

import pytest

from repro.core import (
    GFDGenerator,
    det_vio,
    discover_gfds,
    generate_gfds,
    mine_frequent_edges,
)
from repro.core.generator import mine_frequent_paths
from repro.graph import PropertyGraph, power_law_graph
from repro.datasets import yago_like


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(400, 1200, seed=11, domain_size=15)


class TestFrequentFeatures:
    def test_top_edges_ranked(self, graph):
        seeds = mine_frequent_edges(graph, top=5)
        assert len(seeds) == 5
        assert all(len(seed) == 3 for seed in seeds)

    def test_top_edges_are_most_frequent(self):
        g = PropertyGraph()
        for i in range(6):
            g.add_node(i, "a" if i % 2 == 0 else "b")
        g.add_edge(0, 1, "common")
        g.add_edge(2, 3, "common")
        g.add_edge(4, 5, "rare")
        seeds = mine_frequent_edges(g, top=1)
        assert seeds == [("a", "common", "b")]

    def test_paths_mined(self, graph):
        paths = mine_frequent_paths(graph, length=2, top=3, sample=300, seed=1)
        assert len(paths) <= 3
        assert all(1 <= len(p) <= 2 for p in paths)


class TestGenerator:
    def test_requested_count(self, graph):
        sigma = generate_gfds(graph, count=10, pattern_edges=2, seed=5)
        assert len(sigma) == 10

    def test_pattern_sizes(self, graph):
        sigma = generate_gfds(graph, count=8, pattern_edges=3, seed=5)
        for gfd in sigma:
            assert 1 <= gfd.pattern.num_edges <= 3

    def test_deterministic(self, graph):
        a = generate_gfds(graph, count=5, seed=9)
        b = generate_gfds(graph, count=5, seed=9)
        assert [str(x) for x in a] == [str(y) for y in b]

    def test_literals_use_pattern_variables(self, graph):
        for gfd in generate_gfds(graph, count=12, seed=2):
            for literal in (*gfd.lhs, *gfd.rhs):
                for var in literal.variables():
                    assert var in gfd.pattern

    def test_component_counts(self, graph):
        generator = GFDGenerator(graph, seed=3)
        sigma = generator.generate(20, pattern_edges=2)
        from repro.pattern import connected_components

        counts = {len(connected_components(g.pattern)) for g in sigma}
        assert counts <= {1, 2}
        assert 2 in counts  # some two-component patterns at this seed

    def test_edgeless_graph_rejected(self):
        g = PropertyGraph()
        g.add_node(1, "x")
        with pytest.raises(ValueError):
            GFDGenerator(g)

    def test_attribute_inference(self):
        ds = yago_like.build(scale=30, seed=4)
        generator = GFDGenerator(ds.graph, seed=1)
        assert "val" in generator.attributes


class TestDiscovery:
    def test_discovers_planted_dependency(self):
        g = PropertyGraph()
        for i in range(30):
            person = f"p{i}"
            city = f"c{i}"
            g.add_node(person, "person", {"zip": f"z{i % 5}", "city": f"C{i % 5}"})
            g.add_node(city, "city", {"zip": f"z{i % 5}", "city": f"C{i % 5}"})
            g.add_edge(person, city, "lives_in")
        mined = discover_gfds(g, min_support=5, min_confidence=1.0)
        assert mined
        assert all(m.confidence == 1.0 for m in mined)
        # The mined rules must actually hold on the graph they came from.
        for m in mined[:5]:
            assert det_vio([m.gfd], g) == set()

    def test_confidence_threshold_excludes_noisy(self):
        g = PropertyGraph()
        for i in range(30):
            g.add_node(f"p{i}", "person", {"zip": "z1", "city": "C1"})
            g.add_node(f"c{i}", "city", {"zip": "z1", "city": "C1"})
            g.add_edge(f"p{i}", f"c{i}", "lives_in")
        # Poison one pair so zip→city confidence drops below 1.
        g.set_attr("c0", "city", "WRONG")
        strict = discover_gfds(g, min_support=5, min_confidence=1.0)
        lenient = discover_gfds(g, min_support=5, min_confidence=0.9)
        assert len(lenient) >= len(strict)

    def test_support_threshold(self):
        g = PropertyGraph()
        g.add_node("a", "x", {"A": 1})
        g.add_node("b", "y", {"A": 1})
        g.add_edge("a", "b", "e")
        assert discover_gfds(g, min_support=5) == []

    def test_zero_min_support_skips_unsupported_premises(self):
        # Regression: with min_support=0 a proposal whose premise no
        # match satisfied reached confidence = satisfied / 0.
        g = PropertyGraph()
        for i in range(8):
            g.add_node(f"p{i}", "person", {"A": f"u{i}"})
            g.add_node(f"c{i}", "city", {"A": f"w{i}"})
            g.add_edge(f"p{i}", f"c{i}", "lives_in")
        mined = discover_gfds(g, min_support=0, min_confidence=0.0)
        assert all(0.0 <= m.confidence <= 1.0 for m in mined)
        assert all(m.support > 0 for m in mined)

    def test_select_rules_zero_supported_no_division(self):
        from repro.core.discovery import candidate_patterns, select_rules
        from repro.core.literals import ConstantLiteral

        g = PropertyGraph()
        g.add_node("a", "t", {"A": "v"})
        g.add_node("b", "u", None)
        g.add_edge("a", "b", "e")
        pattern = candidate_patterns(g)[0]
        dep = ((ConstantLiteral("x", "A", "never"),),
               (ConstantLiteral("x", "A", "v"),))
        rules = select_rules([(pattern, dep, 0, 0)],
                             min_support=0, min_confidence=0.0)
        assert rules == []  # skipped, not ZeroDivisionError
