"""Tests for ``repro.analysis`` — the repo-invariant static-analysis pass.

Each rule gets fixture-snippet tests: a *positive* that reproduces the
historical bug shape the rule encodes (PR 4's order-dependent slice,
PR 7's untracked attach and double pickle-measure, PR 2's unguarded
cache field, the silent unhandled work-unit kind), a *negative* showing
the blessed idiom passes, and a *suppression* showing the inline
escape hatch works only with a justification.  The baseline round-trip
and the CLI contract (exit codes, ``--explain``) are covered at the
end, plus the meta-test pinning the pass green on the repo tree itself.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import RULES, run_analysis
from repro.analysis import baseline as baseline_mod
from repro.analysis.__main__ import main as analysis_main

REPO_ROOT = Path(__file__).resolve().parents[1]


def write_tree(root: Path, files: dict) -> None:
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))


def findings_for(tmp_path: Path, files: dict, *codes: str):
    write_tree(tmp_path, files)
    report = run_analysis(tmp_path, [tmp_path])
    assert not report.errors, report.errors
    if not codes:
        return report
    return [f for f in report.findings if f.code in codes]


# ---------------------------------------------------------------------------
# framework: registry, suppressions
# ---------------------------------------------------------------------------

class TestFramework:
    def test_registry_has_the_battery(self):
        # the acceptance bar: >= 5 distinct repo-invariant rule codes
        assert len(set(RULES) - {"RPL000"}) >= 5
        for code, rule in RULES.items():
            assert code == rule.code
            assert type(rule).explain().startswith(code)

    def test_unjustified_suppression_is_a_finding_and_inert(self, tmp_path):
        report = findings_for(tmp_path, {
            "mod.py": """
                import pickle
                def f(x):
                    return pickle.dumps(x)  # repro-lint: disable=RPL030
            """,
        })
        codes = {f.code for f in report.findings}
        assert "RPL000" in codes  # the bare disable is flagged
        assert "RPL030" in codes  # ...and suppresses nothing

    def test_justified_suppression_suppresses(self, tmp_path):
        report = findings_for(tmp_path, {
            "mod.py": """
                import pickle
                def f(x):
                    return pickle.dumps(x)  # repro-lint: disable=RPL030 -- fixture exercises the escape hatch
            """,
        })
        assert not [f for f in report.findings if f.code == "RPL030"]
        assert [f for f in report.suppressed if f.code == "RPL030"]

    def test_standalone_suppression_binds_to_next_code_line(self, tmp_path):
        report = findings_for(tmp_path, {
            "mod.py": """
                import pickle
                def f(x):
                    # repro-lint: disable=RPL030 -- measured here on purpose
                    return pickle.dumps(x)
            """,
        })
        assert not [f for f in report.findings if f.code == "RPL030"]
        assert [f for f in report.suppressed if f.code == "RPL030"]


# ---------------------------------------------------------------------------
# RPL001 — order-dependent iteration (PR 4's matches[:200])
# ---------------------------------------------------------------------------

class TestUnorderedIteration:
    def test_sliced_list_of_set_fires(self, tmp_path):
        found = findings_for(tmp_path, {
            "parallel/mod.py": """
                def cap(matches):
                    found = {m for m in matches}
                    out = list(found)
                    return out[:200]
            """,
        }, "RPL001")
        assert found, "the PR 4 bug shape must fire"

    def test_sorted_dominates(self, tmp_path):
        found = findings_for(tmp_path, {
            "parallel/mod.py": """
                def cap(matches):
                    found = {m for m in matches}
                    out = sorted(found)
                    return out[:200]
            """,
        }, "RPL001")
        assert not found

    def test_next_iter_of_set_fires(self, tmp_path):
        found = findings_for(tmp_path, {
            "core/mod.py": """
                def pick(xs):
                    pool = set(xs)
                    return next(iter(pool))
            """,
        }, "RPL001")
        assert found

    def test_append_accumulation_over_set_fires(self, tmp_path):
        found = findings_for(tmp_path, {
            "matching/mod.py": """
                def collect(units):
                    seen = set(units)
                    acc = []
                    for u in seen:
                        acc.append(u)
                    return acc
            """,
        }, "RPL001")
        assert found

    def test_out_of_scope_path_is_ignored(self, tmp_path):
        found = findings_for(tmp_path, {
            "tools/mod.py": """
                def cap(matches):
                    found = {m for m in matches}
                    return list(found)[:200]
            """,
        }, "RPL001")
        assert not found


# ---------------------------------------------------------------------------
# RPL002 — unseeded entropy / wall clock in engine paths
# ---------------------------------------------------------------------------

class TestUnseededEntropy:
    def test_wall_clock_and_global_random_fire(self, tmp_path):
        found = findings_for(tmp_path, {
            "parallel/mod.py": """
                import random, time
                def jitter():
                    return random.random() * time.time()
            """,
        }, "RPL002")
        assert len(found) == 2

    def test_seeded_rng_and_perf_counter_pass(self, tmp_path):
        found = findings_for(tmp_path, {
            "parallel/mod.py": """
                import random, time
                def jitter(seed):
                    rng = random.Random(seed)
                    return rng.random() * time.perf_counter()
            """,
        }, "RPL002")
        assert not found


# ---------------------------------------------------------------------------
# RPL010 — guarded-by lock discipline (PR 2's unguarded cache field)
# ---------------------------------------------------------------------------

class TestGuardedBy:
    def test_unguarded_access_fires(self, tmp_path):
        found = findings_for(tmp_path, {
            "mod.py": """
                import threading
                class Cache:
                    def __init__(self):
                        self._lock = threading.RLock()
                        self._entries = {}  #: guarded-by: _lock
                    def peek(self, key):
                        return self._entries.get(key)
            """,
        }, "RPL010")
        assert found and "peek" in found[0].message

    def test_with_lock_passes(self, tmp_path):
        found = findings_for(tmp_path, {
            "mod.py": """
                import threading
                class Cache:
                    def __init__(self):
                        self._lock = threading.RLock()
                        self._entries = {}  #: guarded-by: _lock
                    def peek(self, key):
                        with self._lock:
                            return self._entries.get(key)
            """,
        }, "RPL010")
        assert not found

    def test_holds_contract_passes(self, tmp_path):
        found = findings_for(tmp_path, {
            "mod.py": """
                import threading
                class Cache:
                    def __init__(self):
                        self._lock = threading.RLock()
                        self._entries = {}  #: guarded-by: _lock
                    def _peek_locked(self, key):  #: holds: _lock
                        return self._entries.get(key)
            """,
        }, "RPL010")
        assert not found

    def test_dotted_lock_path(self, tmp_path):
        files = {
            "mod.py": """
                class Sub:
                    def __init__(self, service):
                        self._service = service
                        self._pending = []  #: guarded-by: _service._cond
                    def drain(self):
                        with self._service._cond:
                            return list(self._pending)
                    def leak(self):
                        return list(self._pending)
            """,
        }
        found = findings_for(tmp_path, files, "RPL010")
        assert len(found) == 1 and "leak" in found[0].message


# ---------------------------------------------------------------------------
# RPL020/021/022 — shm lifecycle (PR 7's untracked attach)
# ---------------------------------------------------------------------------

class TestShmLifecycle:
    def test_create_outside_plane_fires(self, tmp_path):
        found = findings_for(tmp_path, {
            "mod.py": """
                from multiprocessing import shared_memory
                def grab():
                    return shared_memory.SharedMemory(create=True, size=64)
            """,
        }, "RPL020")
        assert found

    def test_create_inside_plane_with_teardown_passes(self, tmp_path):
        report = findings_for(tmp_path, {
            "mod.py": """
                from multiprocessing import shared_memory
                class ShardPlane:
                    def publish(self):
                        self._seg = shared_memory.SharedMemory(
                            create=True, size=64)
                    def unlink_all(self):
                        self._seg.close()
                        self._seg.unlink()
            """,
        })
        assert not [f for f in report.findings
                    if f.code in ("RPL020", "RPL022")]

    def test_untracked_attach_outside_door_fires(self, tmp_path):
        found = findings_for(tmp_path, {
            "mod.py": """
                from multiprocessing import shared_memory
                def worker_attach(name):
                    return shared_memory.SharedMemory(name=name)
            """,
        }, "RPL021")
        assert found, "the PR 7 tracked-attach bug shape must fire"

    def test_attach_through_the_door_passes(self, tmp_path):
        found = findings_for(tmp_path, {
            "mod.py": """
                from multiprocessing import shared_memory
                def _attach_untracked(name):
                    return shared_memory.SharedMemory(name=name)
            """,
        }, "RPL021")
        assert not found

    def test_create_without_teardown_fires(self, tmp_path):
        found = findings_for(tmp_path, {
            "mod.py": """
                from multiprocessing import shared_memory
                class ShardPlane:
                    def publish(self):
                        self._seg = shared_memory.SharedMemory(
                            create=True, size=64)
            """,
        }, "RPL022")
        assert found


# ---------------------------------------------------------------------------
# RPL030 — shipping discipline (PR 7's payload_size double-measure)
# ---------------------------------------------------------------------------

class TestShippingDiscipline:
    def test_double_measure_fires(self, tmp_path):
        found = findings_for(tmp_path, {
            "mod.py": """
                import pickle
                def price(unit):
                    return len(pickle.dumps(unit.payload))
            """,
        }, "RPL030")
        assert found, "the payload_size double-measure shape must fire"

    def test_forking_pickler_counts_too(self, tmp_path):
        found = findings_for(tmp_path, {
            "mod.py": """
                from multiprocessing.reduction import ForkingPickler
                def ship(data):
                    return bytes(ForkingPickler.dumps(data))
            """,
        }, "RPL030")
        assert found

    def test_pack_shard_is_the_choke_point(self, tmp_path):
        found = findings_for(tmp_path, {
            "mod.py": """
                from multiprocessing.reduction import ForkingPickler
                def pack_shard(data):
                    return bytes(ForkingPickler.dumps(data))
            """,
        }, "RPL030")
        assert not found


# ---------------------------------------------------------------------------
# RPL040/041 — dispatch exhaustiveness (the silently-dropped kind)
# ---------------------------------------------------------------------------

_WORKLOAD = """
    from dataclasses import dataclass, replace
    @dataclass
    class WorkUnit:
        block: tuple
        kind: str = "detect"
    def as_mine(unit):
        return replace(unit, kind="mine")
"""


class TestDispatchExhaustiveness:
    def test_unhandled_kind_in_execute_fires(self, tmp_path):
        found = findings_for(tmp_path, {
            "workload.py": _WORKLOAD,
            "engine.py": """
                def execute_unit(unit):
                    if unit.kind == "detect":
                        return 1
                    raise ValueError(unit.kind)
                def consolidate_slot_results(unit, result):
                    if unit.kind in ("detect", "mine"):
                        return result
            """,
        }, "RPL040")
        assert [f for f in found if "'mine'" in f.message]

    def test_unhandled_kind_in_consolidate_fires(self, tmp_path):
        found = findings_for(tmp_path, {
            "workload.py": _WORKLOAD,
            "engine.py": """
                def execute_unit(unit):
                    if unit.kind in ("detect", "mine"):
                        return 1
                def consolidate_slot_results(unit, result):
                    if unit.kind == "detect":
                        return result
            """,
        }, "RPL041")
        assert [f for f in found if "'mine'" in f.message]

    def test_exhaustive_dispatch_passes(self, tmp_path):
        report = findings_for(tmp_path, {
            "workload.py": _WORKLOAD,
            "engine.py": """
                def execute_unit(unit):
                    if unit.kind in ("detect", "mine"):
                        return 1
                def consolidate_slot_results(unit, result):
                    if unit.kind in ("detect", "mine"):
                        return result
            """,
        })
        assert not [f for f in report.findings
                    if f.code in ("RPL040", "RPL041")]

    def test_silent_without_a_dispatcher(self, tmp_path):
        report = findings_for(tmp_path, {"workload.py": _WORKLOAD})
        assert not [f for f in report.findings
                    if f.code in ("RPL040", "RPL041")]


# ---------------------------------------------------------------------------
# baseline round-trip + CLI contract
# ---------------------------------------------------------------------------

_DIRTY = {
    "mod.py": """
        import pickle
        def price(unit):
            return len(pickle.dumps(unit.payload))
    """,
}


class TestBaselineRoundTrip:
    def test_write_justify_load_split(self, tmp_path):
        write_tree(tmp_path, _DIRTY)
        report = run_analysis(tmp_path, [tmp_path])
        assert report.findings
        baseline_path = tmp_path / "baseline.json"
        baseline_mod.write(baseline_path, report.findings, {})
        # placeholder justifications must be rejected...
        with pytest.raises(baseline_mod.BaselineError):
            baseline_mod.load(baseline_path)
        # ...until a human writes the one-liner
        data = json.loads(baseline_path.read_text())
        for entry in data["findings"]:
            entry["justification"] = "fixture: grandfathered on purpose"
        baseline_path.write_text(json.dumps(data))
        loaded = baseline_mod.load(baseline_path)
        new, grandfathered, stale = baseline_mod.split(
            report.findings, loaded)
        assert not new and not stale
        assert len(grandfathered) == len(report.findings)

    def test_fingerprints_survive_line_drift(self, tmp_path):
        write_tree(tmp_path, _DIRTY)
        before = run_analysis(tmp_path, [tmp_path]).findings
        shifted = "# a new header comment\n" + (tmp_path / "mod.py").read_text()
        (tmp_path / "mod.py").write_text(shifted)
        after = run_analysis(tmp_path, [tmp_path]).findings
        assert [fp for _, fp in baseline_mod.fingerprints(before)] == \
               [fp for _, fp in baseline_mod.fingerprints(after)]

    def test_stale_entries_fail_the_run(self, tmp_path):
        write_tree(tmp_path, _DIRTY)
        code = analysis_main([
            "--root", str(tmp_path), str(tmp_path / "mod.py"),
            "--baseline", str(tmp_path / "baseline.json"),
            "--write-baseline",
        ])
        assert code == 0
        data = json.loads((tmp_path / "baseline.json").read_text())
        for entry in data["findings"]:
            entry["justification"] = "fixture"
        (tmp_path / "baseline.json").write_text(json.dumps(data))
        # fix the finding: the baseline entry goes stale -> exit 1
        (tmp_path / "mod.py").write_text(
            "def price(unit):\n    return 0\n")
        code = analysis_main([
            "--root", str(tmp_path), str(tmp_path / "mod.py"),
            "--baseline", str(tmp_path / "baseline.json"),
        ])
        assert code == 1


class TestCli:
    def test_exit_codes_and_report_artifact(self, tmp_path, capsys):
        write_tree(tmp_path, _DIRTY)
        report_path = tmp_path / "out" / "report.json"
        code = analysis_main([
            "--root", str(tmp_path), str(tmp_path / "mod.py"),
            "--no-baseline", "--report", str(report_path),
        ])
        assert code == 1
        payload = json.loads(report_path.read_text())
        assert payload["findings"]
        assert payload["findings"][0]["code"] == "RPL030"
        capsys.readouterr()

    def test_explain_every_registered_rule(self, capsys):
        for code in sorted(RULES):
            assert analysis_main(["--explain", code]) == 0
            assert code in capsys.readouterr().out
        assert analysis_main(["--explain", "RPL999"]) == 2
        capsys.readouterr()

    def test_repo_tree_is_clean(self):
        """The CI gate: ``python -m repro.analysis`` exits 0 on the repo."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
