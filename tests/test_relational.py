"""Tests for the minimal relational engine."""

import pytest

from repro.relational import (
    EngineStats,
    Table,
    cross_product,
    distinct,
    graph_to_tables,
    attribute_lookup,
    hash_join,
    project,
    rename,
    select,
)


@pytest.fixture
def people():
    return Table(
        "people",
        ["id", "name", "city"],
        [
            {"id": 1, "name": "Ann", "city": "Edi"},
            {"id": 2, "name": "Bob", "city": "NYC"},
            {"id": 3, "name": "Cat", "city": "Edi"},
        ],
    )


@pytest.fixture
def cities():
    return Table(
        "cities",
        ["city", "country"],
        [
            {"city": "Edi", "country": "UK"},
            {"city": "NYC", "country": "US"},
        ],
    )


class TestOperators:
    def test_select(self, people):
        stats = EngineStats()
        out = select(people, lambda r: r["city"] == "Edi", stats)
        assert len(out) == 2
        assert stats.rows_scanned == 3
        assert stats.rows_output == 2

    def test_project(self, people):
        out = project(people, ["name"])
        assert out.columns == ["name"]
        assert {row["name"] for row in out} == {"Ann", "Bob", "Cat"}

    def test_rename(self, people):
        out = rename(people, {"name": "person_name"})
        assert "person_name" in out.columns
        assert out.rows[0]["person_name"] == "Ann"

    def test_hash_join(self, people, cities):
        out = hash_join(people, cities, on=[("city", "city")])
        assert len(out) == 3
        ann = next(r for r in out if r["name"] == "Ann")
        assert ann["country"] == "UK"

    def test_hash_join_no_matches(self, people):
        empty = Table("empty", ["city", "x"], [])
        out = hash_join(people, empty, on=[("city", "city")])
        assert len(out) == 0

    def test_hash_join_clashing_columns_suffixed(self, people):
        other = Table("other", ["id", "name"], [{"id": 1, "name": "X"}])
        out = hash_join(people, other, on=[("id", "id")])
        assert len(out) == 1
        row = out.rows[0]
        assert row["name"] == "Ann"
        assert row["name__other"] == "X"

    def test_cross_product(self, people, cities):
        out = cross_product(people, cities)
        assert len(out) == 6

    def test_cross_product_with_filter(self, people, cities):
        out = cross_product(
            people, cities, filter_fn=lambda r: r["city"] == r["city__cities"]
        )
        assert len(out) == 3

    def test_distinct(self):
        t = Table("t", ["a"], [{"a": 1}, {"a": 1}, {"a": 2}])
        assert len(distinct(t)) == 2

    def test_insert_fills_missing_columns(self):
        t = Table("t", ["a", "b"])
        t.insert({"a": 1})
        assert t.rows[0] == {"a": 1, "b": None}

    def test_stats_total(self):
        stats = EngineStats(rows_scanned=2, rows_joined=3, rows_output=4)
        assert stats.total == 9


class TestGraphEncoding:
    def test_tables_cover_graph(self, g3):
        tables = graph_to_tables(g3)
        assert len(tables["nodes"]) == g3.num_nodes
        assert len(tables["edges"]) == g3.num_edges
        assert len(tables["attrs"]) == 2  # val on both nodes

    def test_attribute_lookup(self, g3):
        lookup = attribute_lookup(graph_to_tables(g3))
        assert lookup[("au", "val")] == "Australia"
        assert ("au", "nope") not in lookup
