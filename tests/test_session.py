"""Tests for the session layer (:class:`repro.ValidationSession`).

Four pillars:

* **compat shim** — the stateless ``rep_val``/``dis_val`` facades
  delegate to throwaway sessions and return results identical (field by
  field) to an explicitly-constructed session, with no
  ``DeprecationWarning`` (or any warning) emitted;
* **warm pool + shard caches** — a second ``validate()`` on an unchanged
  session ships *zero* block-shares, reuses every resident shard, runs on
  the same worker PIDs, and still reports the exact same figures as the
  cold run;
* **incremental updates** — ``session.update()`` maintains violations on
  the snapshot backend, forwards deltas to the worker shards, and stays
  equal to from-scratch re-validation;
* **per-run materialiser stats** — a materialiser shared across session
  runs reports each run's own builds/hits/evictions, not the cumulative
  tally (the satellite bugfix).
"""

import io
import warnings

import pytest

from repro import (
    ValidationSession,
    det_vio,
    dis_val,
    generate_gfds,
    power_law_graph,
    rep_val,
)
from repro.cli import main as cli_main
from repro.graph import greedy_edge_cut_partition, hash_partition, save_graph
from repro.parallel.engine import BlockMaterialiser

WORKLOAD_SEEDS = (3, 11)


@pytest.fixture(scope="module")
def workloads():
    out = {}
    for seed in WORKLOAD_SEEDS:
        graph = power_law_graph(220, 560, seed=seed, domain_size=12)
        sigma = generate_gfds(graph, count=4, pattern_edges=2, seed=seed)
        out[seed] = (graph, sigma, det_vio(sigma, graph))
    return out


class TestCompatShim:
    """The stateless API is a facade over throwaway sessions."""

    @pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
    def test_rep_val_delegates_identically(self, workloads, seed):
        graph, sigma, expected = workloads[seed]
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            shim = rep_val(sigma, graph, n=4)
            with ValidationSession(
                graph, sigma, executor="simulated", persistent=False
            ) as session:
                direct = session.validate(n=4)
        assert shim == direct  # every field: violations, report, extras
        assert shim.violations == expected

    @pytest.mark.parametrize("partitioner", [hash_partition,
                                             greedy_edge_cut_partition])
    def test_dis_val_delegates_identically(self, workloads, partitioner):
        graph, sigma, expected = workloads[3]
        fragmentation = partitioner(graph, 3, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            shim = dis_val(sigma, fragmentation)
            with ValidationSession(
                graph, sigma, executor="simulated", persistent=False
            ) as session:
                direct = session.validate(fragmentation=fragmentation)
        assert shim == direct
        assert shim.violations == expected

    def test_variant_kwargs_pass_through(self, workloads):
        graph, sigma, _ = workloads[3]
        shim = rep_val(sigma, graph, n=3, assignment="random", seed=5,
                       optimize=False)
        with ValidationSession(
            graph, sigma, executor="simulated", persistent=False
        ) as session:
            direct = session.validate(n=3, assignment="random", seed=5,
                                      optimize=False)
        assert shim == direct
        assert shim.algorithm == "repran"

    def test_bad_arguments_rejected(self, workloads):
        graph, sigma, _ = workloads[3]
        with pytest.raises(ValueError):
            ValidationSession(graph, sigma, executor="threads")
        with pytest.raises(ValueError):
            ValidationSession(graph, sigma, processes=0)
        with ValidationSession(graph, sigma) as session:
            with pytest.raises(ValueError):
                session.validate(n=2, assignment="nope")
            with pytest.raises(ValueError):
                session.validate(
                    n=3, fragmentation=hash_partition(graph, 2, seed=0)
                )


class TestWarmRuns:
    """Second validate(): zero shipping, same PIDs, same figures."""

    def test_warm_repval_ships_nothing_and_reuses_pids(self, workloads):
        graph, sigma, expected = workloads[3]
        with ValidationSession(
            graph, sigma, executor="process", processes=2
        ) as session:
            cold = session.validate(n=4)
            pids = session.worker_pids()
            warm = session.validate(n=4)
        assert cold.violations == expected == warm.violations
        assert cold.report == warm.report  # warmth never changes figures
        assert cold.shipping.full > 0
        assert warm.shipping.full == 0
        assert warm.shipping.delta == 0
        assert warm.shipping.shipped_nodes == 0
        assert warm.shipping.reused == cold.shipping.full
        assert warm.shipping.worker_pids == cold.shipping.worker_pids
        assert pids  # the persistent pool is visible on the session
        assert set(warm.shipping.worker_pids.values()) <= set(pids)

    def test_warm_disval_reuses_fragmentation_shards(self, workloads):
        graph, sigma, expected = workloads[3]
        fragmentation = greedy_edge_cut_partition(graph, 3, seed=1)
        with ValidationSession(
            graph, sigma, executor="process", processes=2
        ) as session:
            cold = session.validate(fragmentation=fragmentation)
            warm = session.validate(fragmentation=fragmentation)
        assert cold.violations == expected == warm.violations
        assert cold.report == warm.report
        assert warm.shipping.full == 0 and warm.shipping.shipped_nodes == 0
        assert warm.shipping.worker_pids == cold.shipping.worker_pids

    def test_equivalent_fragmentation_recut_stays_warm(self, workloads):
        """'Consecutive runs reuse a fragmentation' includes an identical
        re-cut object, recognised via Fragmentation.fingerprint()."""
        graph, sigma, _ = workloads[3]
        first = hash_partition(graph, 3, seed=2)
        second = hash_partition(graph, 3, seed=2)
        assert first is not second
        assert first.fingerprint() == second.fingerprint()
        with ValidationSession(
            graph, sigma, executor="process", processes=2
        ) as session:
            session.validate(fragmentation=first)
            warm = session.validate(fragmentation=second)
        assert warm.shipping.full == 0 and warm.shipping.reused > 0

    def test_simulated_sessions_reuse_blocks_not_processes(self, workloads):
        graph, sigma, expected = workloads[3]
        with ValidationSession(graph, sigma, executor="simulated") as session:
            cold = session.validate(n=4)
            warm = session.validate(n=4)
        assert cold.violations == expected == warm.violations
        assert cold.report == warm.report
        assert cold.shipping is None and warm.shipping is None
        assert cold.cache.builds > 0
        assert warm.cache.builds == 0  # every block came from the cache
        assert warm.cache.hits > 0

    def test_close_is_idempotent_and_restartable(self, workloads):
        graph, sigma, expected = workloads[3]
        session = ValidationSession(graph, sigma, executor="process",
                                    processes=2)
        try:
            session.validate(n=4)
            assert session.worker_pids()
            session.close()
            session.close()
            assert session.worker_pids() == []
            rerun = session.validate(n=4)  # cold again, still correct
            assert rerun.violations == expected
            assert rerun.shipping.full > 0
        finally:
            session.close()

    def test_out_of_band_mutation_drops_simulated_block_cache(self):
        """An unrouted structural edit must not leave stale blocks in the
        shared materialiser (the simulated-path twin of ShardCache.sync)."""
        from repro import parse_gfd
        from repro.graph import PropertyGraph

        graph = PropertyGraph()
        graph.add_node("au", "country", {"val": "Australia"})
        graph.add_node("c1", "city", {"val": "Canberra"})
        graph.add_node("c2", "city", {"val": "Melbourne"})
        graph.add_edge("au", "c1", "capital")
        graph.add_edge("au", "c2", "visits")
        phi = parse_gfd(
            "x:country -capital-> y:city; x -capital-> z:city",
            " => y.val = z.val", name="phi2",
        )
        with ValidationSession(graph, [phi], executor="simulated") as session:
            assert session.validate(n=2).violations == set()
            graph.add_edge("au", "c2", "capital")  # NOT via session.update
            rerun = session.validate(n=2)
        assert rerun.violations == det_vio([phi], graph, backend="legacy")
        assert rerun.violations  # the second capital is a violation

    def test_stale_fragmentation_rejected_with_clear_error(self, workloads):
        base_graph, sigma, _ = workloads[3]
        graph = base_graph.copy()
        fragmentation = hash_partition(graph, 2, seed=0)
        with ValidationSession(graph, sigma) as session:
            session.update([("node", "fresh", "L0", {"A0": "v0"})])
            with pytest.raises(ValueError, match="re-cut"):
                session.validate(fragmentation=fragmentation)
            recut = hash_partition(graph, 2, seed=0)
            run = session.validate(fragmentation=recut)
        assert run.violations == det_vio(sigma, graph, backend="legacy")

    def test_edge_only_stale_fragmentation_tolerated(self, workloads):
        """Pre-session behaviour preserved: a fragmentation cut before an
        edge-only mutation still validates (owner map is still total)."""
        base_graph, sigma, _ = workloads[3]
        graph = base_graph.copy()
        fragmentation = hash_partition(graph, 2, seed=0)
        nodes = list(graph.nodes())
        graph.add_edge(nodes[0], nodes[5], "e0")
        run = dis_val(sigma, fragmentation)
        assert run.violations == det_vio(sigma, graph, backend="legacy")

    def test_out_of_band_mutation_invalidates_maintained_violations(self):
        """g mutated directly, then update(): the stale cached set must
        not seed the incremental validator."""
        from repro import parse_gfd
        from repro.graph import PropertyGraph

        graph = PropertyGraph()
        graph.add_node("au", "country", {"val": "Australia"})
        graph.add_node("c1", "city", {"val": "Canberra"})
        graph.add_node("c2", "city", {"val": "Melbourne"})
        graph.add_edge("au", "c1", "capital")
        phi = parse_gfd(
            "x:country -capital-> y:city; x -capital-> z:city",
            " => y.val = z.val", name="phi2",
        )
        with ValidationSession(graph, [phi], executor="simulated") as session:
            assert session.validate(n=1).violations == set()
            graph.add_edge("au", "c2", "capital")  # NOT via session.update
            session.update([("attr", "c1", "other", "x")])  # unrelated op
            assert session.violations == det_vio([phi], graph)
            assert session.violations  # the out-of-band capital clash

    def test_out_of_band_mutation_refreshes_violations_property(self):
        from repro import parse_gfd
        from repro.graph import PropertyGraph

        graph = PropertyGraph()
        graph.add_node("au", "country", {"val": "Australia"})
        graph.add_node("c1", "city", {"val": "Canberra"})
        graph.add_node("c2", "city", {"val": "Melbourne"})
        graph.add_edge("au", "c1", "capital")
        phi = parse_gfd(
            "x:country -capital-> y:city; x -capital-> z:city",
            " => y.val = z.val", name="phi2",
        )
        with ValidationSession(graph, [phi], executor="simulated") as session:
            assert session.violations == set()
            graph.add_edge("au", "c2", "capital")
            assert session.violations == det_vio([phi], graph)

    def test_foreign_graph_fragmentation_rejected(self, workloads):
        graph, sigma, _ = workloads[3]
        other = graph.copy()
        with ValidationSession(graph, sigma) as session:
            with pytest.raises(ValueError, match="different graph"):
                session.validate(fragmentation=hash_partition(other, 2, seed=0))

    def test_processes_override_restarts_pool(self, workloads):
        graph, sigma, expected = workloads[3]
        with ValidationSession(
            graph, sigma, executor="process", processes=1
        ) as session:
            session.validate(n=4)
            first_pids = set(session.worker_pids())
            run = session.validate(n=4, processes=2)
            assert run.violations == expected
            assert run.shipping.full > 0  # restarted cold, not stale-warm
            assert set(session.worker_pids()) != first_pids

    def test_shard_log_compacts_once_consumed(self, workloads):
        graph, sigma, _ = workloads[3]
        graph = graph.copy()
        with ValidationSession(
            graph, sigma, executor="process", processes=2
        ) as session:
            session.validate(n=4)
            nodes = list(graph.nodes())
            session.update([("attr", nodes[0], "A0", "x")])
            session.validate(n=4)  # consumes the op everywhere
            session.validate(n=4)  # sync() compacts the consumed prefix
            assert session._shard_cache._log == []

    def test_out_of_band_mutation_degrades_to_cold(self, workloads):
        graph, sigma, _ = workloads[3]
        graph = graph.copy()
        sigma = list(sigma)
        with ValidationSession(
            graph, sigma, executor="process", processes=2
        ) as session:
            session.validate(n=4)
            nodes = list(graph.nodes())
            graph.add_edge(nodes[0], nodes[3], "e0")  # NOT via session.update
            run = session.validate(n=4)
        assert run.shipping.reused == 0  # stale shards were not trusted
        assert run.shipping.full > 0
        assert run.violations == det_vio(sigma, graph, backend="legacy")


class TestSessionUpdates:
    """update() maintains violations and forwards deltas to shards."""

    @pytest.mark.parametrize("seed", WORKLOAD_SEEDS)
    def test_update_then_validate_matches_scratch(self, workloads, seed):
        base_graph, sigma, _ = workloads[seed]
        graph = base_graph.copy()
        from repro.parallel import build_shared_groups, estimate_workload

        # Touch nodes that live inside a real data block, so the update
        # demonstrably lands in some worker's resident shard.
        units = estimate_workload(sigma, graph,
                                  groups=build_shared_groups(sigma))
        block = sorted(
            max(units, key=lambda u: len(u.block_nodes)).block_nodes,
            key=repr,
        )
        with ValidationSession(
            graph, sigma, executor="process", processes=2
        ) as session:
            session.validate(n=4)
            session.update([
                ("edge+", block[0], block[1], "e0"),
                ("attr", block[2], "A0", "mutated"),
                ("node", "fresh", "L0", {"A0": "v0"}),
                ("edge+", "fresh", block[0], "e1"),
            ])
            expected = det_vio(sigma, graph, backend="legacy")
            assert session.violations == expected  # incremental, no rerun
            run = session.validate(n=4)
        assert run.violations == expected
        # The post-update run shipped deltas (ops/nodes), not full shards.
        assert run.shipping.full == 0
        assert run.shipping.delta > 0
        assert run.shipping.shipped_ops > 0

    def test_update_returns_added_violations(self):
        graph = power_law_graph(60, 0, seed=0, domain_size=1)
        from repro import parse_gfd

        graph.add_node("au", "country", {"val": "Australia"})
        graph.add_node("c1", "city", {"val": "Canberra"})
        graph.add_node("c2", "city", {"val": "Melbourne"})
        graph.add_edge("au", "c1", "capital")
        phi = parse_gfd(
            "x:country -capital-> y:city; x -capital-> z:city",
            " => y.val = z.val", name="phi2",
        )
        with ValidationSession(graph, [phi], executor="simulated") as session:
            assert session.validate(n=1).violations == set()
            added = session.update([("edge+", "au", "c2", "capital")])
            assert added
            assert session.violations == det_vio([phi], graph)
            removed = session.update([("edge-", "au", "c2", "capital")])
            assert removed == set()
            assert session.violations == set()

    def test_reconcile_after_out_of_band_refreshes_matchers(self):
        """validate() after an out-of-band edge must not leave the
        incremental validator holding pre-mutation matcher caches."""
        from repro import parse_gfd
        from repro.graph import PropertyGraph

        graph = PropertyGraph()
        graph.add_node("au", "country", {"val": "Australia"})
        graph.add_node("c1", "city", {"val": "Canberra"})
        graph.add_node("c2", "city", {"val": "Canberra"})
        graph.add_edge("au", "c1", "capital")
        phi = parse_gfd(
            "x:country -capital-> y:city; x -capital-> z:city",
            " => y.val = z.val", name="phi2",
        )
        with ValidationSession(graph, [phi], executor="simulated") as session:
            # Warm the incremental validator and its matcher caches.
            session.update([("attr", "c1", "noise", 1)])
            graph.add_edge("au", "c2", "capital")  # NOT via session.update
            session.validate(n=1)  # reconciles; matchers must refresh
            # Attribute-only update: no structural invalidation inside
            # the validator — only the reconcile-time refresh saves it.
            session.update([("attr", "c2", "val", "Sydney")])
            assert session.violations == det_vio([phi], graph)
            assert session.violations  # Canberra vs Sydney

    def test_update_before_any_validate(self, workloads):
        base_graph, sigma, _ = workloads[3]
        graph = base_graph.copy()
        with ValidationSession(graph, sigma, executor="simulated") as session:
            nodes = list(graph.nodes())
            session.update([("edge+", nodes[0], nodes[1], "e0")])
            assert session.violations == det_vio(
                sigma, graph, backend="legacy"
            )
            assert session.validate(n=2).violations == session.violations


class TestMaterialiserRunStats:
    """Satellite bugfix: per-run stats from a shared materialiser."""

    def test_take_stats_resets_per_run_slice(self, workloads):
        graph, sigma, _ = workloads[3]
        from repro.parallel import build_shared_groups, estimate_workload

        units = estimate_workload(sigma, graph,
                                  groups=build_shared_groups(sigma))
        materialiser = BlockMaterialiser(graph)
        for unit in units[:4]:
            materialiser.block(unit.block_nodes)
        first = materialiser.take_stats()
        assert first.builds > 0
        for unit in units[:4]:  # second "run": all hits
            materialiser.block(unit.block_nodes)
        second = materialiser.take_stats()
        assert second.builds == 0
        assert second.hits >= 4
        # Cumulative counters still span both runs.
        assert materialiser.builds == first.builds
        assert materialiser.hits == first.hits + second.hits

    def test_evictions_counted_per_run(self, workloads):
        graph, sigma, _ = workloads[3]
        from repro.parallel import build_shared_groups, estimate_workload

        units = estimate_workload(sigma, graph,
                                  groups=build_shared_groups(sigma))
        tiny = BlockMaterialiser(graph, budget=1)  # evict on every build
        for unit in units[:5]:
            tiny.block(unit.block_nodes)
        run1 = tiny.take_stats()
        assert run1.evictions > 0
        assert tiny.take_stats().evictions == 0  # nothing since the take
        for unit in units[:3]:
            tiny.block(unit.block_nodes)
        run2 = tiny.take_stats()
        assert run2.evictions <= run1.evictions + run2.evictions
        assert tiny.evictions == run1.evictions + run2.evictions

    def test_session_runs_report_their_own_cache_slice(self, workloads):
        graph, sigma, _ = workloads[3]
        with ValidationSession(graph, sigma, executor="simulated") as session:
            first = session.validate(n=2)
            second = session.validate(n=2)
            third = session.validate(n=2)
        # Identical warm runs must report identical per-run stats — the
        # old cumulative counters would have grown run over run.
        assert second.cache == third.cache
        assert first.cache.builds > 0 and second.cache.builds == 0


class TestCliSessionSurface:
    """CLI parity satellites: --executor/--processes + bench --repeat."""

    @pytest.fixture
    def files(self, tmp_path, workloads):
        graph, sigma, _ = workloads[3]
        from repro.cli import format_rule_file

        gpath = tmp_path / "g.jsonl"
        rpath = tmp_path / "r.gfd"
        save_graph(graph, gpath)
        rpath.write_text(format_rule_file(sigma))
        return str(gpath), str(rpath)

    def test_validate_accepts_executor_flags(self, files):
        gpath, rpath = files
        out = io.StringIO()
        code = cli_main(
            ["validate", gpath, rpath, "--executor", "process",
             "--processes", "2"],
            out=out,
        )
        baseline = io.StringIO()
        base_code = cli_main(["validate", gpath, rpath], out=baseline)
        assert code == base_code
        assert out.getvalue() == baseline.getvalue()

    def test_discover_accepts_executor_flags(self, files):
        gpath, _ = files
        out = io.StringIO()
        code = cli_main(
            ["discover", gpath, "--support", "2", "--executor", "simulated"],
            out=out,
        )
        assert code == 0

    def test_bench_repeat_runs_warm_iterations(self, files):
        gpath, rpath = files
        out = io.StringIO()
        code = cli_main(
            ["bench", gpath, rpath, "--workers", "3", "--repeat", "2"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "iteration 1" in text and "iteration 2" in text
        assert "repVal" in text and "disVal" in text
