"""Tests for GFD satisfiability (Section 4.1, Theorem 1, Corollary 4)."""


from repro.core import (
    build_model,
    canonical_graph,
    det_vio,
    find_conflicting_host,
    is_satisfiable,
    parse_gfd,
    trivially_satisfiable,
)
from repro.matching import has_match


PHI7 = parse_gfd("x:tau", " => x.A = 'c'", name="phi7")
PHI7B = parse_gfd("x:tau", " => x.A = 'd'", name="phi7'")

Q8_TEXT = "x:tau -l-> y:tau; x -l-> z:tau; y -l-> z"
Q9_TEXT = "x:tau -l-> y:tau; x -l-> z:tau; y -l-> z; y -l-> w:tau; z -l-> w"
PHI8 = parse_gfd(Q8_TEXT, " => x.A = 'c'", name="phi8")
PHI9 = parse_gfd(Q9_TEXT, " => x.A = 'd'", name="phi9")


class TestExample7:
    def test_same_pattern_conflict(self):
        """φ7, φ7′ force x.A to both c and d on any τ node."""
        assert is_satisfiable([PHI7])
        assert is_satisfiable([PHI7B])
        assert not is_satisfiable([PHI7, PHI7B])

    def test_cross_pattern_conflict(self):
        """φ8 and φ9: each satisfiable alone, conflicting together since
        Q8 embeds in Q9."""
        assert is_satisfiable([PHI8])
        assert is_satisfiable([PHI9])
        assert not is_satisfiable([PHI8, PHI9])

    def test_conflicting_host_diagnostic(self):
        host = find_conflicting_host([PHI8, PHI9])
        assert host is not None
        pattern, participants = host
        assert sorted(participants) == [0, 1]

    def test_no_host_for_satisfiable(self):
        assert find_conflicting_host([PHI7]) is None


class TestCorollary4:
    def test_variable_gfds_always_satisfiable(self, phi1, phi2):
        assert trivially_satisfiable([phi1, phi2])
        assert is_satisfiable([phi1, phi2])

    def test_no_empty_lhs_always_satisfiable(self):
        guarded = parse_gfd("x:tau", "x.B = 1 => x.A = 'c'")
        guarded2 = parse_gfd("x:tau", "x.B = 1 => x.A = 'd'")
        assert trivially_satisfiable([guarded, guarded2])
        assert is_satisfiable([guarded, guarded2])

    def test_tautological_lhs_counts_as_empty(self):
        sneaky = parse_gfd("x:tau", "x.A = x.A => x.B = 'c'")
        sneaky2 = parse_gfd("x:tau", "x.A = x.A => x.B = 'd'")
        assert not trivially_satisfiable([sneaky, sneaky2])
        assert not is_satisfiable([sneaky, sneaky2])


class TestInteractionThroughPremises:
    def test_constant_chain_conflict(self):
        """Premises fire through constants enforced by other GFDs."""
        a = parse_gfd("x:tau", " => x.A = 'c'")
        b = parse_gfd("x:tau", "x.A = 'c' => x.B = '1'")
        c = parse_gfd("x:tau", "x.A = 'c' => x.B = '2'")
        assert not is_satisfiable([a, b, c])
        assert is_satisfiable([a, b])

    def test_disconnected_pattern_interaction(self):
        """Disconnected patterns match across instances: any τ pairs with
        the σ required by the second pattern."""
        every_tau = parse_gfd("x:tau; y:sigma", " => x.A = 'c'")
        some_tau = parse_gfd("x:tau", " => x.A = 'd'")
        assert not is_satisfiable([every_tau, some_tau])

    def test_disjoint_labels_no_interaction(self):
        a = parse_gfd("x:tau -e-> y:sigma", " => x.A = 'c'")
        b = parse_gfd("x:tau -f-> z:rho", " => x.A = 'd'")
        # Optional overlap only: a model can keep the two τ roles separate.
        assert is_satisfiable([a, b])

    def test_wildcard_forces_interaction(self):
        anything = parse_gfd("x", " => x.A = 'c'")
        tau = parse_gfd("x:tau", " => x.A = 'd'")
        assert not is_satisfiable([anything, tau])


class TestModelConstruction:
    def test_model_satisfies_sigma(self):
        sigma = [
            parse_gfd("x:tau", " => x.A = 'c'"),
            parse_gfd("x:tau", "x.A = 'c' => x.B = '1'"),
        ]
        model = build_model(sigma)
        assert model is not None
        assert det_vio(sigma, model) == set()

    def test_model_contains_all_patterns(self, phi1, phi2):
        model = build_model([phi1, phi2])
        assert model is not None
        assert has_match(phi1.pattern, model)
        assert has_match(phi2.pattern, model)

    def test_no_model_when_unsatisfiable(self):
        assert build_model([PHI7, PHI7B]) is None

    def test_empty_sigma(self):
        assert is_satisfiable([])
        assert build_model([]) is not None

    def test_variable_rhs_gets_fresh_values(self):
        sigma = [parse_gfd("x:tau -e-> y:tau", " => x.A = y.A")]
        model = build_model(sigma)
        assert model is not None
        assert det_vio(sigma, model) == set()


class TestCanonicalGraph:
    def test_one_instance_per_pattern(self, phi1, phi2):
        graph, instantiations = canonical_graph([phi1, phi2])
        assert len(instantiations) == 2
        assert graph.num_nodes == phi1.pattern.num_nodes + phi2.pattern.num_nodes

    def test_wildcards_get_private_labels(self):
        gfd = parse_gfd("x -e-> y", " => x.A = 1")
        graph, _ = canonical_graph([gfd])
        labels = graph.labels()
        assert all(label.startswith("⊥") for label in labels)
