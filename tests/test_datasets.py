"""Tests for the dataset stand-ins (DESIGN.md §1.3 substitutions)."""


from repro.core import det_vio, satisfies, violation_entities
from repro.quality import accuracy
from repro.datasets import dbpedia_like, pokec_like, yago_like


class TestYagoLike:
    def test_deterministic(self):
        a = yago_like.build(scale=50, seed=2)
        b = yago_like.build(scale=50, seed=2)
        assert a.graph == b.graph
        assert a.truth_entities == b.truth_entities

    def test_all_rules_catch_their_seeds(self):
        ds = yago_like.build(scale=80, seed=3)
        vio = det_vio(ds.gfds, ds.graph)
        fired = {v.gfd_name for v in vio}
        assert fired == {
            "phi1-flight", "phi2-capital", "gfd1-child-parent",
            "gfd3-mayor-party",
        }

    def test_perfect_accuracy_on_seeded_errors(self):
        ds = yago_like.build(scale=80, seed=3)
        detected = violation_entities(det_vio(ds.gfds, ds.graph))
        acc = accuracy(detected, ds.truth_entities)
        assert acc.precision == 1.0
        assert acc.recall == 1.0

    def test_clean_when_no_errors_seeded(self):
        ds = yago_like.build(
            scale=60, seed=4, flight_errors=0, capital_errors=0,
            family_errors=0, mayor_errors=0,
        )
        assert satisfies(ds.gfds, ds.graph)
        assert ds.truth_entities == set()

    def test_scale_controls_size(self):
        small = yago_like.build(scale=30, seed=1)
        large = yago_like.build(scale=120, seed=1)
        assert large.graph.num_nodes > small.graph.num_nodes


class TestDbpediaLike:
    def test_disjoint_type_errors_caught(self):
        ds = dbpedia_like.build(scale=120, seed=5)
        vio = det_vio(ds.gfds, ds.graph)
        assert vio
        detected = violation_entities(vio)
        acc = accuracy(detected, ds.truth_entities)
        assert acc.precision == 1.0 and acc.recall == 1.0

    def test_clean_without_seeded_errors(self):
        ds = dbpedia_like.build(scale=100, seed=5, type_errors=0)
        assert satisfies(ds.gfds, ds.graph)

    def test_ontology_structure(self):
        ds = dbpedia_like.build(scale=60, seed=6)
        graph = ds.graph
        assert graph.nodes_with_label("class")
        assert "subClassOf" in graph.edge_labels()
        assert "disjointWith" in graph.edge_labels()

    def test_entities_have_generator_attributes(self):
        ds = dbpedia_like.build(scale=40, seed=7)
        clean_entities = [
            node for node in ds.graph.nodes()
            if str(node).startswith("entity")
        ]
        assert clean_entities
        assert all(ds.graph.has_attr(n, "A0") for n in clean_entities)

    def test_entities_carry_typed_labels(self):
        ds = dbpedia_like.build(scale=60, seed=7)
        # The stand-in mirrors DBpedia's type diversity: several entity
        # labels, each with a non-trivial population.
        entity_labels = ds.graph.labels() - {"class"}
        assert len(entity_labels) >= 4


class TestPokecLike:
    def test_phi6_catches_unmarked_rings(self):
        ds = pokec_like.build(scale=150, seed=8)
        vio = det_vio(ds.gfds, ds.graph)
        assert vio
        detected = violation_entities(vio)
        acc = accuracy(detected, ds.truth_entities)
        assert acc.precision == 1.0 and acc.recall == 1.0

    def test_marked_rings_are_clean(self):
        ds = pokec_like.build(scale=100, seed=9, unmarked_rings=0)
        assert satisfies(ds.gfds, ds.graph)

    def test_violating_accounts_unmarked(self):
        ds = pokec_like.build(scale=100, seed=10)
        for violation in det_vio(ds.gfds, ds.graph):
            x = violation.match["x"]
            assert ds.graph.get_attr(x, "is_fake") == "false"

    def test_social_structure(self):
        ds = pokec_like.build(scale=100, seed=11)
        labels = ds.graph.edge_labels()
        assert {"friend", "post", "like"} <= labels
