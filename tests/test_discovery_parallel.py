"""Differential suite for session-backed parallel GFD discovery.

Pins the tentpole contract of `ValidationSession.discover`:

* **parallel ≡ serial** — the mined rule set (rules, names, supports,
  confidences) from `session.discover` on the simulated *and* the real
  process executor is identical to serial `discover_gfds`, across seeded
  graphs × worker counts (≥ 10 combinations) and across fragmented-graph
  mining;
* **warm phases ship nothing** — on a persistent process pool the count
  phase and the mined-Σ confirmation pass reuse the worker-resident
  shards mining shipped (zero block-shares, zero nodes; the confirmation
  pass ships only Σ), and a second `discover()` is warm end-to-end;
* **discovery is order-independent** — the legacy and snapshot matcher
  backends mine the same set (the old `matches[:200]` proposal sample
  depended on enumeration order), and the explicit seeded sample is
  invariant under input shuffling;
* **sessions interleave** — base-Σ validation stays correct before and
  after mining on the same pool (the worker-side rule-set swap).
"""

import random

import pytest

from repro import (
    ValidationSession,
    det_vio,
    discover_gfds,
    generate_gfds,
    power_law_graph,
)
from repro.core.discovery import (
    candidate_dependencies,
    candidate_patterns,
    canonical_matches,
)
from repro.graph import greedy_edge_cut_partition, hash_partition
from repro.matching import SubgraphMatcher

SEEDS = (0, 7, 13, 21)
WORKER_COUNTS = (2, 3, 5)
PARAMS = dict(min_support=3, min_confidence=0.85)


def mined_key(discovered):
    """Value identity of a mined rule (name, pattern, dependency, stats)."""
    return (
        discovered.gfd.name,
        discovered.gfd.pattern.signature(),
        discovered.gfd.lhs,
        discovered.gfd.rhs,
        discovered.support,
        discovered.confidence,
    )


@pytest.fixture(scope="module")
def workloads():
    out = {}
    for seed in SEEDS:
        # A dense label alphabet concentrates matches so every seed
        # actually mines a non-trivial rule set (the default 30-label
        # alphabet leaves most candidate patterns below min_support).
        graph = power_law_graph(
            170, 400, seed=seed, domain_size=7,
            node_labels=["person", "city", "org"],
            edge_labels=["knows", "in", "for"],
        )
        out[seed] = (graph, discover_gfds(graph, **PARAMS))
    return out


class TestProcessDiscoveryDifferential:
    """session.discover on the process executor ≡ serial discover_gfds
    across ≥ 10 seeded graph/worker-count combinations (4 × 3 = 12)."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_mined_set_across_worker_counts(self, workloads, seed):
        graph, serial = workloads[seed]
        with ValidationSession(
            graph, [], executor="process", processes=2
        ) as session:
            for n in WORKER_COUNTS:
                run = session.discover(n=n, **PARAMS)
                assert [mined_key(d) for d in run.rules] == [
                    mined_key(d) for d in serial
                ], f"seed={seed} n={n}"
                assert run.executor == "process"
                # The confirmation pass is exact: it must agree with a
                # from-scratch sequential validation of the mined Σ.
                if run.rules:
                    assert run.violations == det_vio(run.sigma, graph)

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_warm_phases_ship_zero_block_shares(self, workloads, seed):
        graph, serial = workloads[seed]
        with ValidationSession(
            graph, [], executor="process", processes=2
        ) as session:
            cold = session.discover(n=3, **PARAMS)
            enumerate_phase = cold.phase("enumerate")
            assert enumerate_phase.shipping.full > 0  # mining shipped shards
            for name in ("count", "confirm"):
                phase = cold.phase(name)
                if phase is None:
                    continue
                # The acceptance pin: warm passes reuse worker-resident
                # shards — zero block-shares, zero nodes shipped.
                assert phase.shipping.full == 0, name
                assert phase.shipping.delta == 0, name
                assert phase.shipping.shipped_nodes == 0, name
                assert phase.shipping.reused > 0, name
            confirm = cold.phase("confirm")
            if confirm is not None:
                # Only the mined Σ itself travelled.
                assert confirm.shipping.shipped_sigma > 0
                assert (
                    confirm.shipping.worker_pids
                    == enumerate_phase.shipping.worker_pids
                )
            # A second discover() is warm end-to-end.
            warm = session.discover(n=3, **PARAMS)
            assert [mined_key(d) for d in warm.rules] == [
                mined_key(d) for d in serial
            ]
            for phase in warm.phases:
                assert phase.shipping.full == 0, phase.phase
                assert phase.shipping.shipped_nodes == 0, phase.phase
                # Identical cost figures warm and cold: warmth is a
                # wall-clock win only, never a reporting change.
                assert phase.report == cold.phase(phase.phase).report

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_count_and_confirm_replay_resident_matches(self, workloads, seed):
        """The PR-5 tentpole pin: on a persistent pool the count and
        confirm phases replay the matches mine left resident — zero VF2
        re-enumerations (``misses == 0``) — and a warm repeat replays
        its enumerate phase too.  Replay requires enumerated matches to
        exist, so this pin runs under ``eval_mode="enumerate"`` (the
        factorised default deposits nothing — there are no matches to
        retain)."""
        graph, serial = workloads[seed]
        with ValidationSession(
            graph, [], executor="process", processes=2
        ) as session:
            cold = session.discover(n=3, eval_mode="enumerate", **PARAMS)
            enumerate_store = cold.phase("enumerate").match_store
            assert enumerate_store.stored > 0  # mine deposited matches
            for name in ("count", "confirm"):
                phase = cold.phase(name)
                if phase is None:
                    continue
                assert phase.match_store.misses == 0, name
                assert phase.match_store.hits > 0, name
            warm = session.discover(n=3, eval_mode="enumerate", **PARAMS)
            assert [mined_key(d) for d in warm.rules] == [
                mined_key(d) for d in serial
            ]
            warm_store = warm.phase("enumerate").match_store
            assert warm_store.misses == 0 and warm_store.hits > 0

    def test_aggregate_payloads_ship_fewer_bytes_than_match_lists(
        self, workloads
    ):
        """The evidence-aggregate data path must beat the match-list
        fallback (an explicit huge sample forces it; the mined set is
        identical because the sample never truncates) on shipped
        payload bytes, for the enumerate *and* the count phase."""
        graph, serial = workloads[0]
        with ValidationSession(
            graph, [], executor="process", processes=2
        ) as session:
            aggregate_run = session.discover(n=3, **PARAMS)
            match_run = session.discover(n=3, sample_size=10**9, **PARAMS)
        for run in (aggregate_run, match_run):
            assert [mined_key(d) for d in run.rules] == [
                mined_key(d) for d in serial
            ]
        for name in ("enumerate", "count"):
            aggregate_bytes = aggregate_run.phase(name).shipping.payload_bytes
            match_bytes = match_run.phase(name).shipping.payload_bytes
            assert aggregate_bytes < match_bytes, (
                f"{name}: aggregates shipped {aggregate_bytes} bytes vs "
                f"{match_bytes} for match lists"
            )

    def test_mining_interleaves_with_base_validation(self, workloads):
        graph, serial = workloads[7]
        sigma = generate_gfds(graph, count=4, pattern_edges=2, seed=7)
        expected = det_vio(sigma, graph)
        with ValidationSession(
            graph, sigma, executor="process", processes=2
        ) as session:
            before = session.validate(n=3)
            assert before.violations == expected
            run = session.discover(n=3, **PARAMS)
            assert [mined_key(d) for d in run.rules] == [
                mined_key(d) for d in serial
            ]
            # The worker pool now holds probe/mined Σ — the next base
            # validation must swap Σ back without reshipping shards.
            after = session.validate(n=3)
            assert after.violations == expected
            assert after.report == before.report
            assert after.shipping.full == 0
            assert after.shipping.shipped_nodes == 0


class TestSimulatedDiscoveryDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_mined_set(self, workloads, seed):
        graph, serial = workloads[seed]
        with ValidationSession(graph, [], executor="simulated") as session:
            run = session.discover(n=4, **PARAMS)
        assert [mined_key(d) for d in run.rules] == [
            mined_key(d) for d in serial
        ]
        assert run.executor == "simulated"
        assert run.phases[0].shipping is None
        assert run.phases[0].cache is not None

    def test_warm_simulated_discover_reuses_blocks(self, workloads):
        graph, _ = workloads[0]
        with ValidationSession(graph, [], executor="simulated") as session:
            cold = session.discover(n=2, **PARAMS)
            warm = session.discover(n=2, **PARAMS)
        assert cold.phase("enumerate").cache.builds > 0
        assert warm.phase("enumerate").cache.builds == 0
        assert warm.phase("enumerate").cache.hits > 0
        for phase in warm.phases:
            assert phase.report == cold.phase(phase.phase).report

    def test_simulated_count_replays_coordinator_store(self, workloads):
        """The simulated backend keeps a coordinator-side match store
        with the same replay semantics as the worker-resident ones —
        and replay never changes the reported cost figures.  Pinned
        under ``eval_mode="enumerate"``: factorised mining deposits no
        matches, so there would be nothing to replay."""
        graph, _ = workloads[0]
        with ValidationSession(graph, [], executor="simulated") as session:
            run = session.discover(n=2, eval_mode="enumerate", **PARAMS)
        count_phase = run.phase("count")
        assert count_phase.match_store.misses == 0
        assert count_phase.match_store.hits > 0
        confirm_phase = run.phase("confirm")
        if confirm_phase is not None:
            assert confirm_phase.match_store.misses == 0


class TestFragmentedDiscovery:
    """The new scenario: mining a fragmented graph, disVal-style."""

    @pytest.mark.parametrize("partitioner", [hash_partition,
                                             greedy_edge_cut_partition])
    @pytest.mark.parametrize("executor,processes", [
        ("simulated", None), ("process", 2),
    ])
    def test_fragmented_mining_matches_serial(
        self, workloads, partitioner, executor, processes
    ):
        graph, serial = workloads[13]
        fragmentation = partitioner(graph, 3, seed=1)
        with ValidationSession(
            graph, [], executor=executor, processes=processes
        ) as session:
            run = session.discover(fragmentation=fragmentation, **PARAMS)
        assert [mined_key(d) for d in run.rules] == [
            mined_key(d) for d in serial
        ]
        # Fragmented mining charges communication for assembling blocks
        # that straddle fragments, exactly like disVal.
        assert run.phase("enumerate").report.total_shipped > 0

    def test_fragmented_rejects_mismatched_n(self, workloads):
        graph, _ = workloads[13]
        fragmentation = hash_partition(graph, 3, seed=0)
        with ValidationSession(graph, []) as session:
            with pytest.raises(ValueError, match="implied"):
                session.discover(n=2, fragmentation=fragmentation)

    def test_fragmented_rejects_foreign_graph(self, workloads):
        graph, _ = workloads[13]
        other = graph.copy()
        with ValidationSession(graph, []) as session:
            with pytest.raises(ValueError, match="different graph"):
                session.discover(
                    fragmentation=hash_partition(other, 2, seed=0)
                )


class TestDiscoveryOrderIndependence:
    """Satellite: the mined set never depends on enumeration order."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_legacy_vs_snapshot_backends_mine_identically(
        self, workloads, seed
    ):
        graph, _ = workloads[seed]
        legacy = discover_gfds(graph, backend="legacy", **PARAMS)
        snapshot = discover_gfds(graph, backend="snapshot", **PARAMS)
        assert [mined_key(d) for d in legacy] == [
            mined_key(d) for d in snapshot
        ]

    def test_seeded_sample_is_input_order_invariant(self, workloads):
        graph, _ = workloads[0]
        pattern, matches = max(
            (
                (p, list(SubgraphMatcher(p, graph).matches()))
                for p in candidate_patterns(graph)
            ),
            key=lambda pair: len(pair[1]),
        )
        assert len(matches) > 12
        baseline = candidate_dependencies(
            pattern, graph, canonical_matches(matches),
            sample_size=10, seed=5,
        )
        for shuffle_seed in range(3):
            shuffled = list(matches)
            random.Random(shuffle_seed).shuffle(shuffled)
            assert candidate_dependencies(
                pattern, graph, shuffled, sample_size=10, seed=5
            ) == baseline

    def test_sample_seed_changes_sample(self, workloads):
        """The sample really is seeded (not a fixed prefix): different
        seeds may propose different evidence, same seed never does."""
        graph, _ = workloads[0]
        pattern = candidate_patterns(graph)[0]
        matches = list(SubgraphMatcher(pattern, graph).matches())
        once = candidate_dependencies(
            pattern, graph, matches, sample_size=5, seed=1
        )
        again = candidate_dependencies(
            pattern, graph, matches, sample_size=5, seed=1
        )
        assert once == again

    def test_max_matches_cap_is_canonical(self, workloads):
        """A cap below the match count still mines deterministically and
        identically across backends (the cap selects a canonical prefix,
        not an enumeration-order prefix)."""
        graph, _ = workloads[7]
        capped_legacy = discover_gfds(
            graph, backend="legacy", max_matches=20, **PARAMS
        )
        capped_snapshot = discover_gfds(
            graph, backend="snapshot", max_matches=20, **PARAMS
        )
        assert [mined_key(d) for d in capped_legacy] == [
            mined_key(d) for d in capped_snapshot
        ]

    def test_capped_parallel_matches_capped_serial(self, workloads):
        """When the cap bites, the session falls back to coordinator-side
        counting over the canonical subset — still identical to serial."""
        graph, _ = workloads[7]
        serial = discover_gfds(graph, max_matches=20, **PARAMS)
        with ValidationSession(
            graph, [], executor="process", processes=2
        ) as session:
            run = session.discover(n=3, max_matches=20, **PARAMS)
        assert [mined_key(d) for d in run.rules] == [
            mined_key(d) for d in serial
        ]

    def test_dense_block_triggers_worker_side_capping(self):
        """A single pivot block with thousands of matches flips the mine
        unit onto the bounded per-member payload path (worker-side
        member-space capping) — the mined set must stay identical to the
        serial reference."""
        from repro.graph import PropertyGraph

        graph = PropertyGraph()
        graph.add_node("hub", "person", {"A": "a"})
        for i in range(70):
            graph.add_node(f"c{i:02d}", "city", {"zip": f"z{i % 2}"})
            graph.add_edge("hub", f"c{i:02d}", "lives_in")
        # The fan pattern x->y, x->z has 70·69 = 4830 matches in one
        # unit — past the worker's compaction threshold.
        serial = discover_gfds(
            graph, min_support=5, min_confidence=0.9, max_matches=30
        )
        assert serial  # the dense block must actually mine something
        for executor, processes in (("simulated", None), ("process", 2)):
            with ValidationSession(
                graph, [], executor=executor, processes=processes
            ) as session:
                run = session.discover(
                    min_support=5, min_confidence=0.9, max_matches=30, n=2
                )
            assert [mined_key(d) for d in run.rules] == [
                mined_key(d) for d in serial
            ], executor
            assert run.capped_rules  # the cap demonstrably bit

    def test_capped_confidence_one_rule_may_be_violated(self):
        """A capped pattern's confidence describes only the counted
        canonical subset: a confidence-1.0 rule can legitimately report
        confirmation violations from uncounted matches.  Such rules are
        flagged in ``DiscoveryRun.capped_rules`` (and the CLI must not
        treat them as an internal inconsistency)."""
        from repro.graph import PropertyGraph

        graph = PropertyGraph()
        for i in range(60):
            # The canonical order of the 60 matches is the zero-padded
            # node-id order; the counted 30 all carry A='c', the
            # uncounted 30 A='d'.
            value = "c" if i < 30 else "d"
            graph.add_node(f"p{i:02d}", "person", {"A": value})
            graph.add_node(f"c{i:02d}", "city", None)
            graph.add_edge(f"p{i:02d}", f"c{i:02d}", "lives_in")
        serial = discover_gfds(
            graph, min_support=5, min_confidence=1.0, max_matches=30
        )
        with ValidationSession(graph, []) as session:
            run = session.discover(
                min_support=5, min_confidence=1.0, max_matches=30, n=2
            )
        assert [mined_key(d) for d in run.rules] == [
            mined_key(d) for d in serial
        ]
        assert run.rules and all(d.confidence == 1.0 for d in run.rules)
        assert run.violations  # the uncounted A='d' matches violate
        assert run.capped_rules == {d.gfd.name for d in run.rules}
        # det_vio agreement still holds — confirmation is exact.
        assert run.violations == det_vio(run.sigma, graph)
