"""Shared fixtures: the paper's running examples (Figures 1–3) and small
synthetic workloads."""

from __future__ import annotations

import pytest

from repro.graph import PropertyGraph, power_law_graph
from repro.pattern import parse_pattern
from repro.core import parse_gfd


def add_flight(graph, uid, flight_id, from_name, to_name, dep="14:50", arr="22:35"):
    """One flight entity shaped like the paper's G1 (Fig. 1)."""
    flight = f"flight{uid}"
    graph.add_node(flight, "flight", {"val": flight_id})
    graph.add_node(f"{flight}_id", "id", {"val": flight_id})
    graph.add_node(f"{flight}_from", "city", {"val": from_name})
    graph.add_node(f"{flight}_to", "city", {"val": to_name})
    graph.add_node(f"{flight}_dep", "time", {"val": dep})
    graph.add_node(f"{flight}_arr", "time", {"val": arr})
    graph.add_edge(flight, f"{flight}_id", "number")
    graph.add_edge(flight, f"{flight}_from", "from")
    graph.add_edge(flight, f"{flight}_to", "to")
    graph.add_edge(flight, f"{flight}_dep", "depart")
    graph.add_edge(flight, f"{flight}_arr", "arrive")
    return flight


@pytest.fixture
def g1():
    """The paper's G1: two DL1 flights, Paris→NYC and Paris→Singapore."""
    graph = PropertyGraph()
    add_flight(graph, 1, "DL1", "Paris", "NYC")
    add_flight(graph, 2, "DL1", "Paris", "Singapore")
    return graph


@pytest.fixture
def g2():
    """The paper's G2: four accounts, like/post edges, is_fake flags."""
    graph = PropertyGraph()
    flags = {"acct1": "true", "acct2": "true", "acct3": "true", "acct4": "false"}
    for acct, flag in flags.items():
        graph.add_node(acct, "account", {"is_fake": flag})
    # p5–p8 all contain the peculiar keyword "free prize" (their raw text
    # differs, as in Fig. 1, but the extracted keyword attribute agrees).
    texts = {
        "p5": "free prize", "p6": "free gift card & prize",
        "p7": "win free prize", "p8": "free prize draw",
    }
    for blog in ("p1", "p2", "p3", "p4"):
        graph.add_node(blog, "blog", {})
    for blog, text in texts.items():
        graph.add_node(blog, "blog", {"keyword": "free prize", "text": text})
    for acct, blogs in {
        "acct1": ("p1", "p2"), "acct2": ("p1", "p2"),
        "acct3": ("p3", "p4"), "acct4": ("p3", "p4"),
    }.items():
        for blog in blogs:
            graph.add_edge(acct, blog, "like")
    for acct, blog in {
        "acct1": "p5", "acct2": "p6", "acct3": "p7", "acct4": "p8"
    }.items():
        graph.add_edge(acct, blog, "post")
    return graph


@pytest.fixture
def g3():
    """The paper's G3: Australia with its unique capital Canberra."""
    graph = PropertyGraph()
    graph.add_node("au", "country", {"val": "Australia"})
    graph.add_node("canberra", "city", {"val": "Canberra"})
    graph.add_edge("au", "canberra", "capital")
    return graph


@pytest.fixture
def q1():
    """Pattern Q1: two flight entities with id/from/to/depart/arrive."""
    return parse_pattern(
        "x:flight -number-> x1:id; x -from-> x2:city; x -to-> x3:city; "
        "x -depart-> x4:time; x -arrive-> x5:time; "
        "y:flight -number-> y1:id; y -from-> y2:city; y -to-> y3:city; "
        "y -depart-> y4:time; y -arrive-> y5:time"
    )


@pytest.fixture
def q2():
    """Pattern Q2: a country with two capital cities."""
    return parse_pattern("x:country -capital-> y:city; x -capital-> z:city")


@pytest.fixture
def phi1(q1):
    """φ1: same flight id ⟹ same departure city and destination."""
    return parse_gfd(
        "x:flight -number-> x1:id; x -from-> x2:city; x -to-> x3:city; "
        "x -depart-> x4:time; x -arrive-> x5:time; "
        "y:flight -number-> y1:id; y -from-> y2:city; y -to-> y3:city; "
        "y -depart-> y4:time; y -arrive-> y5:time",
        "x1.val = y1.val => x2.val = y2.val, x3.val = y3.val",
        name="phi1",
    )


@pytest.fixture
def phi2():
    """φ2: a country's capitals coincide."""
    return parse_gfd(
        "x:country -capital-> y:city; x -capital-> z:city",
        " => y.val = z.val",
        name="phi2",
    )


@pytest.fixture
def phi6():
    """φ6 (k=2): the fake-account rule of Example 5(6)."""
    return parse_gfd(
        "x:account -like-> y1:blog; x':account -like-> y1; "
        "x -like-> y2:blog; x' -like-> y2; "
        "x' -post-> z1:blog; x -post-> z2:blog",
        "x'.is_fake = 'true', z1.keyword = 'free prize', "
        "z2.keyword = 'free prize' => x.is_fake = 'true'",
        name="phi6",
    )


@pytest.fixture
def small_power_law():
    """A small deterministic power-law graph for workload tests."""
    return power_law_graph(300, 900, seed=7, domain_size=25)
