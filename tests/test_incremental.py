"""Tests for incremental violation maintenance.

The governing invariant: after any update sequence, the maintained set
equals from-scratch ``detVio`` on the current graph.
"""

import random

import pytest

from repro.core import det_vio, parse_gfd
from repro.core.incremental import IncrementalValidator, apply_updates
from repro.graph import PropertyGraph, power_law_graph
from repro.core import generate_gfds


@pytest.fixture
def capital_world(phi2):
    graph = PropertyGraph()
    graph.add_node("au", "country", {"val": "Australia"})
    graph.add_node("c1", "city", {"val": "Canberra"})
    graph.add_node("c2", "city", {"val": "Melbourne"})
    graph.add_edge("au", "c1", "capital")
    return graph


class TestSingleUpdates:
    def test_initial_state_matches_detvio(self, capital_world, phi2):
        validator = IncrementalValidator([phi2], capital_world)
        assert validator.violations == det_vio([phi2], capital_world)

    def test_edge_insert_creates_violation(self, capital_world, phi2):
        validator = IncrementalValidator([phi2], capital_world)
        assert not validator.violations
        added = validator.add_edge("au", "c2", "capital")
        assert added
        assert validator.violations == det_vio([phi2], capital_world)

    def test_edge_delete_clears_violation(self, capital_world, phi2):
        validator = IncrementalValidator([phi2], capital_world)
        validator.add_edge("au", "c2", "capital")
        validator.remove_edge("au", "c2", "capital")
        assert validator.violations == set()

    def test_attr_update_flips_status(self, capital_world, phi2):
        validator = IncrementalValidator([phi2], capital_world)
        validator.add_edge("au", "c2", "capital")
        assert validator.violations
        # Renaming Melbourne to Canberra fixes the inconsistency.
        validator.set_attr("c2", "val", "Canberra")
        assert validator.violations == set()
        # And breaking it again restores the violations.
        validator.set_attr("c2", "val", "Sydney")
        assert validator.violations == det_vio([phi2], capital_world)

    def test_node_insert(self, capital_world, phi2):
        validator = IncrementalValidator([phi2], capital_world)
        validator.add_node("c3", "city", {"val": "Perth"})
        added = validator.add_edge("au", "c3", "capital")
        assert added
        assert validator.violations == det_vio([phi2], capital_world)

    def test_duplicate_names_rejected(self, capital_world, phi2):
        with pytest.raises(ValueError):
            IncrementalValidator([phi2, phi2], capital_world)


class TestDisconnectedPatterns:
    def test_cross_component_matches_maintained(self):
        """FD-style two-node patterns: updates anywhere can pair with
        far-away nodes."""
        graph = PropertyGraph()
        graph.add_node(0, "R", {"A": 1, "B": 1})
        graph.add_node(1, "R", {"A": 1, "B": 1})
        fd = parse_gfd("x:R; y:R", "x.A = y.A => x.B = y.B", name="fd")
        validator = IncrementalValidator([fd], graph)
        assert not validator.violations
        added = validator.set_attr(1, "B", 2)
        assert added
        assert validator.violations == det_vio([fd], graph)
        validator.set_attr(1, "B", 1)
        assert validator.violations == set()

    def test_new_node_joins_cross_matches(self):
        graph = PropertyGraph()
        graph.add_node(0, "R", {"A": 1, "B": 1})
        fd = parse_gfd("x:R; y:R", "x.A = y.A => x.B = y.B", name="fd")
        validator = IncrementalValidator([fd], graph)
        validator.add_node(1, "R", {"A": 1, "B": 9})
        assert validator.violations == det_vio([fd], graph)
        assert len(validator.violations) == 2  # both orientations


class TestRandomisedEquivalence:
    @pytest.mark.parametrize("backend", ["auto", "legacy", "snapshot"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_update_stream_matches_scratch(self, seed, backend):
        rng = random.Random(seed)
        graph = power_law_graph(120, 300, seed=seed, domain_size=5)
        sigma = generate_gfds(graph, count=3, pattern_edges=2, seed=seed)
        validator = IncrementalValidator(sigma, graph, backend=backend)
        nodes = list(graph.nodes())
        edge_labels = sorted(graph.edge_labels())
        for step in range(15):
            kind = rng.choice(["attr", "edge+", "edge-"])
            if kind == "attr":
                node = rng.choice(nodes)
                attr = rng.choice(["A0", "A1", "A2"])
                validator.set_attr(node, attr, f"v{rng.randrange(5)}")
            elif kind == "edge+":
                src, dst = rng.sample(nodes, 2)
                validator.add_edge(src, dst, rng.choice(edge_labels))
            else:
                edges = list(graph.edges())
                if not edges:
                    continue
                validator.remove_edge(*rng.choice(edges))
            assert validator.violations == det_vio(sigma, graph), (
                f"diverged at step {step} ({kind})"
            )

    def test_batch_api(self):
        graph = PropertyGraph()
        graph.add_node("au", "country", {"val": "Australia"})
        graph.add_node("c1", "city", {"val": "Canberra"})
        graph.add_edge("au", "c1", "capital")
        phi2 = parse_gfd(
            "x:country -capital-> y:city; x -capital-> z:city",
            " => y.val = z.val", name="phi2",
        )
        validator = IncrementalValidator([phi2], graph)
        added = apply_updates(validator, [
            ("node", "c2", "city", {"val": "Melbourne"}),
            ("edge+", "au", "c2", "capital"),
        ])
        assert added
        assert validator.violations == det_vio([phi2], graph)

    def test_unknown_update_kind(self, capital_world, phi2):
        validator = IncrementalValidator([phi2], capital_world)
        with pytest.raises(ValueError):
            apply_updates(validator, [("wat",)])
