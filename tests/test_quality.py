"""Tests for noise injection, metrics, and the two baselines (Appendix)."""


from repro.core import det_vio, parse_gfd, violation_entities
from repro.graph import power_law_graph
from repro.pattern import parse_pattern
from repro.quality import (
    accuracy,
    expressible_as_gcfd,
    gfds_to_gcfds,
    inject_noise,
    is_path_pattern,
    validate_bigdansing,
    validate_gcfd,
)
from repro.relational import EngineStats
from repro.datasets import yago_like


class TestNoise:
    def test_probability_zero_injects_nothing(self):
        g = power_law_graph(100, 200, seed=1)
        report = inject_noise(g, probability=0.0, seed=1)
        assert len(report) == 0

    def test_injection_rate_roughly_matches(self):
        g = power_law_graph(500, 1000, seed=2)
        report = inject_noise(g, probability=0.1, seed=2)
        assert 20 <= len(report) <= 90

    def test_corrupt_values_absent_from_clean_data(self):
        g = power_law_graph(200, 400, seed=3)
        report = inject_noise(g, probability=0.05, seed=3)
        for record in report.records:
            if record.attr is not None:
                assert str(record.new_value).startswith("<dirty>")
                assert g.get_attr(record.node, record.attr) == record.new_value

    def test_type_noise_changes_label(self):
        g = power_law_graph(300, 600, seed=4)
        report = inject_noise(g, probability=0.1, seed=4, kinds=("type",))
        type_records = [r for r in report.records if r.kind == "type"]
        assert type_records
        for record in type_records:
            assert g.label(record.node) == record.new_value
            assert record.new_value != record.old_value

    def test_entities_deduplicated(self):
        g = power_law_graph(200, 400, seed=5)
        report = inject_noise(g, probability=0.2, seed=5)
        assert len(report.entities) <= len(report.records) + 1

    def test_deterministic(self):
        g1 = power_law_graph(100, 200, seed=6)
        g2 = power_law_graph(100, 200, seed=6)
        r1 = inject_noise(g1, probability=0.1, seed=7)
        r2 = inject_noise(g2, probability=0.1, seed=7)
        assert r1.entities == r2.entities


class TestAccuracy:
    def test_perfect(self):
        acc = accuracy({1, 2}, {1, 2})
        assert acc.precision == 1.0 and acc.recall == 1.0 and acc.f1 == 1.0

    def test_partial(self):
        acc = accuracy({1, 2, 3, 4}, {1, 2})
        assert acc.precision == 0.5
        assert acc.recall == 1.0

    def test_miss(self):
        acc = accuracy({1}, {1, 2, 3, 4})
        assert acc.recall == 0.25

    def test_empty_detected(self):
        acc = accuracy(set(), {1})
        assert acc.precision == 1.0  # vacuous
        assert acc.recall == 0.0
        assert acc.f1 == 0.0


class TestGCFDExpressibility:
    def test_paths_accepted(self):
        assert is_path_pattern(parse_pattern("a:x -e-> b:y -f-> c:z"))

    def test_out_trees_accepted(self):
        """Fig. 7: Q12 is a tree, so its *shape* is GCFD-compatible."""
        q12 = parse_pattern(
            "x:person -mayorOf-> y:city -locatedIn-> z:country; "
            "x -memberOf-> w:party -locatedIn-> z':country"
        )
        assert is_path_pattern(q12)

    def test_cycles_rejected(self):
        """Fig. 7: Q10 is cyclic → GFD 1 not expressible."""
        q10 = parse_pattern("x:person -hasChild-> y:person; x -hasParent-> y")
        assert not is_path_pattern(q10)

    def test_converging_edges_rejected(self):
        """Fig. 7: Q11's disjoint-type shape converges on y'."""
        q11 = parse_pattern(
            "x:entity -type-> y:class; x -type-> y':class; y -disjointWith-> y'"
        )
        assert not is_path_pattern(q11)

    def test_id_test_rejected(self):
        """Fig. 7: GFD 3 needs z.id = z'.id, beyond GCFDs."""
        gfd3 = parse_gfd(
            "x:person -mayorOf-> y:city -locatedIn-> z:country; "
            "x -memberOf-> w:party -locatedIn-> z':country",
            " => z.id = z'.id",
        )
        assert not expressible_as_gcfd(gfd3)

    def test_split_matches_paper_story(self):
        sigma = yago_like.curated_gfds()
        expressible, rejected = gfds_to_gcfds(sigma)
        assert {g.name for g in rejected} == {
            "gfd1-child-parent", "gfd3-mayor-party"
        }
        assert {g.name for g in expressible} == {"phi1-flight", "phi2-capital"}

    def test_gcfd_recall_lower(self):
        ds = yago_like.build(scale=60, seed=8)
        full = violation_entities(det_vio(ds.gfds, ds.graph))
        partial = violation_entities(validate_gcfd(ds.gfds, ds.graph))
        full_acc = accuracy(full, ds.truth_entities)
        partial_acc = accuracy(partial, ds.truth_entities)
        assert partial_acc.recall < full_acc.recall
        assert partial_acc.precision == 1.0


class TestBigDansing:
    def test_same_violations_as_native(self):
        ds = yago_like.build(scale=40, seed=9)
        native = det_vio(ds.gfds, ds.graph)
        relational = validate_bigdansing(ds.gfds, ds.graph)
        assert relational == native

    def test_handles_isolated_pattern_nodes(self, g1):
        gfd = parse_gfd("x:flight; y:flight", " => x.val = y.val")
        assert validate_bigdansing([gfd], g1) == det_vio([gfd], g1)

    def test_handles_constant_cfd_single_node(self, g1):
        gfd = parse_gfd("x:id", "x.val = 'DL1' => x.val = 'DL1'")
        assert validate_bigdansing([gfd], g1) == det_vio([gfd], g1)

    def test_rows_touched_exceed_native_steps(self):
        """The 4.6× story: relational plans touch far more rows."""
        from repro.matching.vf2 import MatchStats

        ds = yago_like.build(scale=40, seed=10)
        native_stats = MatchStats()
        det_vio(ds.gfds, ds.graph, stats=native_stats)
        rel_stats = EngineStats()
        validate_bigdansing(ds.gfds, ds.graph, rel_stats)
        assert rel_stats.total > native_stats.steps

    def test_wildcard_pattern(self, g2):
        gfd = parse_gfd("x -post-> y:blog", " => y.keyword = 'free prize'")
        assert validate_bigdansing([gfd], g2) == det_vio([gfd], g2)
