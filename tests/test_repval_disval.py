"""Integration tests: repVal / disVal and variants (Section 6, Exp-1/2/3).

The central invariant: every algorithm and every variant computes exactly
the same ``Vio(Σ, G)`` as sequential ``detVio``; the algorithms differ
only in cost.
"""

import pytest

from repro.core import det_vio, generate_gfds
from repro.graph import greedy_edge_cut_partition, hash_partition, power_law_graph
from repro.parallel import (
    dis_nop,
    dis_ran,
    dis_val,
    rep_nop,
    rep_ran,
    rep_val,
    sequential_run,
)
from repro.datasets import yago_like


@pytest.fixture(scope="module")
def workload():
    graph = power_law_graph(800, 2000, seed=13, domain_size=20)
    sigma = generate_gfds(graph, count=5, pattern_edges=2, seed=13)
    expected = det_vio(sigma, graph)
    return graph, sigma, expected


class TestCorrectness:
    def test_repval_matches_detvio(self, workload):
        graph, sigma, expected = workload
        assert rep_val(sigma, graph, n=4).violations == expected

    def test_repran_matches_detvio(self, workload):
        graph, sigma, expected = workload
        assert rep_ran(sigma, graph, n=4).violations == expected

    def test_repnop_matches_detvio(self, workload):
        graph, sigma, expected = workload
        assert rep_nop(sigma, graph, n=4).violations == expected

    def test_disval_matches_detvio(self, workload):
        graph, sigma, expected = workload
        fr = hash_partition(graph, 4)
        assert dis_val(sigma, fr).violations == expected

    def test_disran_disnop_match_detvio(self, workload):
        graph, sigma, expected = workload
        fr = greedy_edge_cut_partition(graph, 4)
        assert dis_ran(sigma, fr).violations == expected
        assert dis_nop(sigma, fr).violations == expected

    def test_split_threshold_preserves_vio(self, workload):
        graph, sigma, expected = workload
        run = rep_val(sigma, graph, n=4, split_threshold=50)
        assert run.violations == expected

    def test_curated_dataset_consistency(self):
        ds = yago_like.build(scale=60, seed=3)
        expected = det_vio(ds.gfds, ds.graph)
        assert rep_val(ds.gfds, ds.graph, n=3).violations == expected
        fr = hash_partition(ds.graph, 3)
        assert dis_val(ds.gfds, fr).violations == expected

    def test_sequential_run_agrees(self, workload):
        graph, sigma, expected = workload
        violations, cost = sequential_run(sigma, graph)
        assert violations == expected
        assert cost > 0

    def test_sequential_budget_abandons(self, workload):
        graph, sigma, _ = workload
        violations, cost = sequential_run(sigma, graph, step_budget=1)
        assert violations is None
        assert cost > 0


class TestParallelScalability:
    def test_more_workers_less_time_repval(self, workload):
        """Theorem 10 / Exp-1: parallel time falls as n grows."""
        graph, sigma, _ = workload
        t4 = rep_val(sigma, graph, n=4).parallel_time
        t16 = rep_val(sigma, graph, n=16).parallel_time
        assert t16 < t4
        assert t4 / t16 > 1.5

    def test_more_workers_less_time_disval(self, workload):
        """Theorem 11 / Exp-1."""
        graph, sigma, _ = workload
        t4 = dis_val(sigma, hash_partition(graph, 4)).parallel_time
        t16 = dis_val(sigma, hash_partition(graph, 16)).parallel_time
        assert t16 < t4

    def test_repval_faster_than_disval(self, workload):
        """Exp-1(3): repVal avoids data exchange."""
        graph, sigma, _ = workload
        rep = rep_val(sigma, graph, n=8).parallel_time
        dis = dis_val(sigma, hash_partition(graph, 8)).parallel_time
        assert rep < dis

    def test_balanced_beats_random(self, workload):
        """Exp-1(2): repVal outperforms repran (on average).

        LPT balances *estimated* weights while the makespan measures
        executed cost, so individual seeds can flip; we compare against
        the mean of several random assignments.
        """
        graph, sigma, _ = workload
        balanced = rep_val(sigma, graph, n=8).report.makespan
        randoms = [
            rep_ran(sigma, graph, n=8, seed=seed).report.makespan
            for seed in range(3)
        ]
        assert balanced <= sum(randoms) / len(randoms) * 1.05

    def test_communication_positive_for_disval(self, workload):
        """Exp-3: disVal ships data; repVal does not."""
        graph, sigma, _ = workload
        rep = rep_val(sigma, graph, n=4)
        dis = dis_val(sigma, hash_partition(graph, 4))
        assert rep.report.total_shipped == 0
        assert dis.report.total_shipped > 0

    def test_algorithm_labels(self, workload):
        graph, sigma, _ = workload
        assert rep_val(sigma, graph, n=2).algorithm == "repVal"
        assert rep_ran(sigma, graph, n=2).algorithm == "repran"
        assert rep_nop(sigma, graph, n=2).algorithm == "repnop"
        fr = hash_partition(graph, 2)
        assert dis_val(sigma, fr).algorithm == "disVal"
        assert dis_ran(sigma, fr).algorithm == "disran"
        assert dis_nop(sigma, fr).algorithm == "disnop"

    def test_unknown_strategy_rejected(self, workload):
        graph, sigma, _ = workload
        with pytest.raises(ValueError):
            rep_val(sigma, graph, n=2, assignment="nope")
        with pytest.raises(ValueError):
            dis_val(sigma, hash_partition(graph, 2), assignment="nope")
