"""Property/invariant tests for :class:`GraphSnapshot` itself: round-trip
fidelity, label-index consistency, pair-index completeness/soundness,
histogram correctness, and the caching/invalidation contract of
``PropertyGraph.snapshot()``."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.graph import (
    GraphSnapshot,
    PropertyGraph,
    graph_from_edges,
    power_law_graph,
)
from repro.graph.snapshot import ABSENT_CODE, WILD_CODE
from repro.matching import compute_candidates

SEEDS = (0, 1, 2, 7)


def generated(seed: int) -> PropertyGraph:
    return power_law_graph(
        num_nodes=80 + 20 * seed,
        num_edges=200 + 40 * seed,
        node_labels=tuple(f"L{i}" for i in range(8)),
        edge_labels=tuple(f"e{i}" for i in range(4)),
        domain_size=10,
        seed=seed,
    )


class TestRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_nodes_edges_labels(self, seed):
        graph = generated(seed)
        snap = GraphSnapshot(graph)
        assert set(snap.nodes()) == set(graph.nodes())
        assert len(snap) == graph.num_nodes
        assert snap.num_nodes == graph.num_nodes
        assert snap.num_edges == graph.num_edges
        assert snap.size == graph.size
        assert sorted(snap.edges()) == sorted(graph.edges())
        for node in graph.nodes():
            assert snap.label(node) == graph.label(node)
        assert snap.labels() == graph.labels()
        assert snap.edge_labels() == graph.edge_labels()

    def test_empty_graph(self):
        snap = GraphSnapshot(PropertyGraph())
        assert snap.num_nodes == 0
        assert snap.num_edges == 0
        assert list(snap.edges()) == []
        assert snap.nodes_with_label("anything") == set()

    def test_index_bijection(self):
        graph = generated(0)
        snap = GraphSnapshot(graph)
        for node in graph.nodes():
            assert snap.node_of(snap.index_of(node)) == node
        assert snap.index_of("not-a-node") is None


class TestLabelIndex:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_nodes_with_label_parity(self, seed):
        graph = generated(seed)
        snap = GraphSnapshot(graph)
        for label in graph.labels():
            assert snap.nodes_with_label(label) == graph.nodes_with_label(label)
        assert snap.nodes_with_label("L-missing") == set()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_partition_of_nodes(self, seed):
        """nodes_by_label partitions the index space."""
        snap = GraphSnapshot(generated(seed))
        seen = set()
        for members in snap.nodes_by_label.values():
            assert not (seen & members)
            seen |= members
        assert seen == set(range(snap.num_nodes))


class TestPairIndex:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_completeness(self, seed):
        """Every edge is findable through its label triple."""
        graph = generated(seed)
        snap = GraphSnapshot(graph)
        for src, dst, elabel in graph.edges():
            sources, targets = snap.pair_nodes(
                graph.label(src), elabel, graph.label(dst)
            )
            assert src in sources
            assert dst in targets

    @pytest.mark.parametrize("seed", SEEDS)
    def test_soundness(self, seed):
        """Every indexed node really participates in such an edge."""
        graph = generated(seed)
        snap = GraphSnapshot(graph)
        names = snap.node_label_names
        elabels = snap.edge_label_names
        for (_src_lab, elab, dst_lab), members in snap.pair_src.items():
            for src_idx in members:
                src = snap.node_of(src_idx)
                assert any(
                    label == elabels[elab] and graph.label(dst) == names[dst_lab]
                    for dst, labels in graph.out_neighbors(src).items()
                    for label in labels
                )
        for (src_lab, elab, _dst_lab), members in snap.pair_dst.items():
            for dst_idx in members:
                dst = snap.node_of(dst_idx)
                assert any(
                    label == elabels[elab] and graph.label(src) == names[src_lab]
                    for src, labels in graph.in_neighbors(dst).items()
                    for label in labels
                )


class TestHistogramsAndAdjacency:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_histograms_match_recount(self, seed):
        graph = generated(seed)
        snap = GraphSnapshot(graph)
        for node in graph.nodes():
            out_count = Counter(
                label
                for labels in graph.out_neighbors(node).values()
                for label in labels
            )
            in_count = Counter(
                label
                for labels in graph.in_neighbors(node).values()
                for label in labels
            )
            assert snap.neighbor_label_counts(node, out=True) == dict(out_count)
            assert snap.neighbor_label_counts(node, out=False) == dict(in_count)
            assert snap.out_degree(node) == graph.out_degree(node)
            assert snap.in_degree(node) == graph.in_degree(node)

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_pools_match_adjacency(self, seed):
        graph = generated(seed)
        snap = GraphSnapshot(graph)
        for node in graph.nodes():
            idx = snap.index_of(node)
            expected_out = {snap.index_of(n) for n in graph.out_neighbors(node)}
            assert set(snap.out_pool(idx, WILD_CODE)) == expected_out
            assert set(snap.in_pool(idx, WILD_CODE)) == {
                snap.index_of(n) for n in graph.in_neighbors(node)
            }
            for elabel in graph.edge_labels():
                code = snap.edge_label_code(elabel)
                expected = {
                    snap.index_of(nbr)
                    for nbr, labels in graph.out_neighbors(node).items()
                    if elabel in labels
                }
                assert set(snap.out_pool(idx, code)) == expected
            assert snap.out_pool(idx, ABSENT_CODE) == ()

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_has_edge_parity(self, seed):
        graph = generated(seed)
        snap = GraphSnapshot(graph)
        rng = random.Random(seed)
        nodes = list(graph.nodes())
        probes = [(s, d, l) for s, d, l in graph.edges()][:50]
        probes += [
            (rng.choice(nodes), rng.choice(nodes), rng.choice(["e0", "e9"]))
            for _ in range(100)
        ]
        for src, dst, label in probes:
            assert snap.has_edge(src, dst, label) == graph.has_edge(src, dst, label)
            assert snap.has_edge(src, dst) == graph.has_edge(src, dst)
        assert not snap.has_edge("ghost", nodes[0])

    def test_has_edge_wildcard_label_is_literal(self):
        """'_' as a has_edge argument names a '_'-labelled data edge,
        exactly as on PropertyGraph — not the pattern wildcard."""
        graph = graph_from_edges([("a", "x", "b")], default_label="n")
        snap = graph.snapshot()
        assert not snap.has_edge("a", "b", "_")
        assert snap.has_edge("a", "b", "_") == graph.has_edge("a", "b", "_")
        graph.add_edge("a", "b")  # default label is the literal "_"
        snap = graph.snapshot()
        assert snap.has_edge("a", "b", "_")
        assert snap.has_edge("a", "b", "x")


class TestCandidatesOverSnapshot:
    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_candidates_subset_of_legacy(self, seed):
        from repro.core import generate_gfds

        graph = generated(seed)
        snap = graph.snapshot()
        for gfd in generate_gfds(graph, count=4, pattern_edges=2, seed=seed):
            legacy = compute_candidates(gfd.pattern, graph)
            indexed = compute_candidates(gfd.pattern, snap)
            assert set(legacy) == set(indexed)
            for var in legacy:
                assert indexed[var] <= legacy[var]


class TestCachingContract:
    def test_snapshot_is_cached(self):
        graph = generated(0)
        assert graph.snapshot() is graph.snapshot()

    def test_structural_mutations_refresh_content(self):
        """Structural mutations must be visible in the next snapshot().

        Since the session layer the cached snapshot is *delta-patched in
        place* (a live view of the graph, same contract as holding the
        graph itself) rather than rebuilt, so the returned object may be
        identical — content freshness is the contract, not identity.
        """
        graph = graph_from_edges(
            [("a", "knows", "b"), ("b", "knows", "c")],
            node_labels={"a": "person", "b": "person", "c": "person"},
        )
        graph.snapshot()  # warm the cache pre-mutation
        graph.add_edge("a", "c", "knows")
        fresh = graph.snapshot()
        assert fresh.has_edge("a", "c", "knows")
        assert fresh.num_edges == graph.num_edges

        graph.remove_edge("a", "c", "knows")
        assert not graph.snapshot().has_edge("a", "c", "knows")

        graph.add_node("d", "robot")
        assert "d" in graph.snapshot()

        graph.remove_node("d")
        assert "d" not in graph.snapshot()

        graph.add_node("a", "robot")  # label change
        assert graph.snapshot().label("a") == "robot"
        assert graph.snapshot().nodes_with_label("robot") == {"a"}

    def test_small_deltas_patch_the_cached_snapshot_in_place(self):
        """A handful of updates is absorbed by apply_delta, not a rebuild."""
        graph = generated(0)
        snap = graph.snapshot()
        nodes = list(graph.nodes())
        graph.add_edge(nodes[0], nodes[1], "e-fresh")
        assert graph.snapshot() is snap  # patched, same object
        assert snap.has_edge(nodes[0], nodes[1], "e-fresh")

    def test_large_deltas_fall_back_to_rebuild(self):
        graph = generated(0)
        snap = graph.snapshot()
        for i in range(graph.size):  # far past the delta budget
            graph.add_node(f"fresh{i}", "L0")
        assert graph.snapshot() is not snap
        assert f"fresh{0}" in graph.snapshot()

    def test_attr_updates_do_not_invalidate(self):
        """Snapshots index structure only; literal values live on the graph."""
        graph = generated(1)
        snap = graph.snapshot()
        node = next(graph.nodes())
        graph.set_attr(node, "A0", "new-value")
        assert graph.snapshot() is snap

    def test_noop_mutations_do_not_invalidate(self):
        graph = graph_from_edges([("a", "knows", "b")], default_label="person")
        snap = graph.snapshot()
        graph.add_edge("a", "b", "knows")  # duplicate edge: no-op
        assert graph.snapshot() is snap
        graph.add_node("a", "person")  # same label: structure unchanged
        assert graph.snapshot() is snap


class TestPickling:
    """Snapshots ship to worker processes: round-trip + payload guards."""

    DERIVED = (
        "index",
        "node_label_ids",
        "edge_label_ids",
        "nodes_by_label",
        "out_slices",
        "out_uniq",
        "out_hist",
        "in_slices",
        "in_uniq",
        "in_hist",
        "edge_set",
        "adj_set",
        "pair_src",
        "pair_dst",
        "num_edges",
    )
    ARRAYS = ("label_codes", "out_offsets", "out_nbrs", "out_labs",
              "out_deg", "in_offsets", "in_nbrs", "in_labs", "in_deg")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_getstate_setstate_round_trip(self, seed):
        import pickle

        graph = generated(seed)
        snap = GraphSnapshot(graph)
        restored = pickle.loads(pickle.dumps(snap))
        # Primary state survives verbatim.
        assert restored.node_ids == snap.node_ids
        assert restored.node_label_names == snap.node_label_names
        assert restored.edge_label_names == snap.edge_label_names
        for name in self.ARRAYS:
            assert getattr(restored, name) == getattr(snap, name), name
        # Every derived index is rebuilt identically from the CSR.
        for name in self.DERIVED:
            assert getattr(restored, name) == getattr(snap, name), name

    def test_round_trip_preserves_matching(self):
        from repro.core import generate_gfds
        from repro.matching import SubgraphMatcher
        import pickle

        graph = generated(2)
        sigma = generate_gfds(graph, count=3, pattern_edges=2, seed=2)
        snap = GraphSnapshot(graph)
        restored = pickle.loads(pickle.dumps(snap))
        for gfd in sigma:
            original = SubgraphMatcher(gfd.pattern, snap)
            recovered = SubgraphMatcher(gfd.pattern, restored)
            def key(m):
                return sorted(m.items(), key=repr)
            assert sorted(map(key, original.matches())) == (
                sorted(map(key, recovered.matches()))
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_pickled_size_within_3x_of_memory_estimate(self, seed):
        """Guard: shipping a snapshot never costs wildly more than holding
        it — the wire format (primary CSR state only) must stay within 3x
        of the byte estimate backing the LRU budget's size accounting."""
        import pickle

        snap = GraphSnapshot(generated(seed))
        pickled = len(pickle.dumps(snap))
        assert snap.memory_estimate() > 0
        assert pickled <= 3 * snap.memory_estimate(), (
            f"pickled {pickled}B vs estimate {snap.memory_estimate()}B"
        )

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_pickled_size_guard_survives_heavy_deltas(self, seed):
        """The 3x guard must also hold on a snapshot grown by in-place
        ``apply_delta`` patching — heavy edge/attr churn inflates the
        pair index and leaves slack rows behind, and the estimate has to
        keep tracking that, not just the freshly-built layout."""
        import pickle

        rng = random.Random(seed)
        graph = generated(seed)
        snap = graph.snapshot()
        nodes = sorted(graph.nodes())
        for round_no in range(8):
            for _ in range(10):
                src, dst = rng.choice(nodes), rng.choice(nodes)
                graph.add_edge(src, dst, f"e{rng.randrange(4)}")
            for _ in range(10):
                graph.set_attr(
                    rng.choice(nodes), "A0", f"w{rng.randrange(6)}"
                )
            for i in range(3):
                name = f"extra-{round_no}-{i}"
                graph.add_node(name, f"L{rng.randrange(8)}")
                graph.add_edge(name, rng.choice(nodes), "e0")
                nodes.append(name)
            snap = graph.snapshot()  # patched in place while in budget
        pickled = len(pickle.dumps(snap))
        assert pickled <= 3 * snap.memory_estimate(), (
            f"post-delta pickled {pickled}B vs estimate "
            f"{snap.memory_estimate()}B"
        )

    def test_graph_pickle_drops_snapshot_cache(self):
        import pickle

        graph = generated(1)
        cold = len(pickle.dumps(graph))
        snap = graph.snapshot()  # warm the cache
        warm = len(pickle.dumps(graph))
        assert warm == cold  # the cached index never rides along
        restored = pickle.loads(pickle.dumps(graph))
        assert restored == graph
        assert restored._snapshot_cache is None
        # A restored graph rebuilds an equivalent snapshot on demand.
        assert restored.snapshot().edge_set == snap.edge_set
