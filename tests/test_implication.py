"""Tests for GFD implication (Section 4.2, Theorem 5, Lemma 7)."""


from repro.core import (
    counterexample,
    implies,
    minimal_cover,
    parse_gfd,
    satisfies,
)
from repro.matching import find_matches
from repro.core.satisfaction import match_satisfies_all


Q8 = "x:tau -l-> y:tau; x -l-> z:tau; y -l-> z"
Q9 = "x:tau -l-> y:tau; x -l-> z:tau; y -l-> z; y -l-> w:tau; z -l-> w"


class TestExample8:
    def setup_method(self):
        self.s1 = parse_gfd(Q8, "x.A = y.A => x.B = y.B", name="s1")
        self.s2 = parse_gfd(Q9, "x.B = y.B => z.C = w.C", name="s2")
        self.phi11 = parse_gfd(Q9, "x.A = y.A => z.C = w.C", name="phi11")

    def test_example8_implication(self):
        assert implies([self.s1, self.s2], self.phi11)

    def test_not_implied_without_link(self):
        assert not implies([self.s2], self.phi11)

    def test_not_implied_reversed(self):
        other = parse_gfd(Q9, "z.C = w.C => x.A = y.A")
        assert not implies([self.s1, self.s2], other)


class TestTrivialCases:
    def test_empty_rhs(self):
        phi = parse_gfd("x:R", "x.A = 1 => ")
        assert implies([], phi)

    def test_tautological_rhs(self):
        phi = parse_gfd("x:R", "x.A = 1 => x.A = x.A")
        assert implies([], phi)

    def test_unsatisfiable_lhs(self):
        phi = parse_gfd("x:R", "x.A = 1, x.A = 2 => x.B = 3")
        assert implies([], phi)

    def test_rhs_from_own_lhs(self):
        phi = parse_gfd("x:R; y:R", "x.A = y.A, x.A = 1 => y.A = 1")
        assert implies([], phi)

    def test_self_implication(self):
        phi = parse_gfd("x:R", "x.A = 1 => x.B = 2")
        assert implies([phi], phi)

    def test_unsatisfiable_sigma_implies_everything(self):
        clash = [
            parse_gfd("x:R", " => x.A = 'c'"),
            parse_gfd("x:R", " => x.A = 'd'"),
        ]
        anything = parse_gfd("x:R", "x.B = 1 => x.C = 2")
        assert implies(clash, anything, check_satisfiability=True)


class TestEmbeddedImplication:
    def test_smaller_pattern_constrains_larger(self):
        small = parse_gfd("x:R", " => x.A = 'c'")
        larger = parse_gfd("x:R -e-> y:S", " => x.A = 'c'")
        assert implies([small], larger)
        assert not implies([larger], small)  # larger scope is weaker

    def test_constant_binding_chain(self):
        a = parse_gfd("x:R", "x.A = 1 => x.B = 2")
        b = parse_gfd("x:R", "x.B = 2 => x.C = 3")
        target = parse_gfd("x:R", "x.A = 1 => x.C = 3")
        assert implies([a, b], target)

    def test_contradictory_sigma_consequences_make_vacuous(self):
        # Σ forces x.B = 1; a premise x.B = 2 can never be satisfied in a
        # graph satisfying Σ, so the implication holds vacuously.
        forcing = parse_gfd("x:R", "x.A = 1 => x.B = 1")
        phi = parse_gfd("x:R", "x.A = 1, x.B = 2 => x.C = 99")
        assert implies([forcing], phi)


class TestCounterexample:
    def test_counterexample_none_when_implied(self):
        a = parse_gfd("x:R", "x.A = 1 => x.B = 2")
        assert counterexample([a], a) is None

    def test_counterexample_witnesses_non_implication(self):
        s1 = parse_gfd(Q8, "x.A = y.A => x.B = y.B", name="s1")
        target = parse_gfd(Q8, "x.A = y.A => z.C = x.C", name="t")
        witness = counterexample([s1], target)
        assert witness is not None
        # The witness satisfies Σ...
        assert satisfies([s1], witness)
        # ...and violates the target on at least one match.
        violating = [
            m
            for m in find_matches(target.pattern, witness)
            if match_satisfies_all(witness, m, target.lhs)
            and not match_satisfies_all(witness, m, target.rhs)
        ]
        assert violating


class TestMinimalCover:
    def test_drops_implied_rule(self):
        a = parse_gfd("x:R", "x.A = 1 => x.B = 2", name="a")
        b = parse_gfd("x:R", "x.B = 2 => x.C = 3", name="b")
        implied = parse_gfd("x:R", "x.A = 1 => x.C = 3", name="implied")
        cover = minimal_cover([a, b, implied])
        assert len(cover) == 2
        assert implied not in cover

    def test_keeps_independent_rules(self, phi1, phi2):
        cover = minimal_cover([phi1, phi2])
        assert len(cover) == 2

    def test_drops_duplicates(self):
        a = parse_gfd("x:R", "x.A = 1 => x.B = 2", name="a")
        a_copy = parse_gfd("x:R", "x.A = 1 => x.B = 2", name="copy")
        assert len(minimal_cover([a, a_copy])) == 1
