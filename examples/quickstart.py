"""Quickstart: define a GFD, catch an inconsistency, reason about rules.

Reproduces the capital example of the paper's introduction: both Canberra
and Melbourne are recorded as the capital of Australia, and the GFD
φ2 = (Q2[x, y, z], ∅ → y.val = z.val) flags it.

Run:  python examples/quickstart.py
"""

from repro import PropertyGraph, det_vio, implies, is_satisfiable, parse_gfd


def main() -> None:
    # 1. Build a small knowledge graph (the paper's Canberra/Melbourne case).
    graph = PropertyGraph()
    graph.add_node("au", "country", {"val": "Australia"})
    graph.add_node("canberra", "city", {"val": "Canberra"})
    graph.add_node("melbourne", "city", {"val": "Melbourne"})
    graph.add_edge("au", "canberra", "capital")
    graph.add_edge("au", "melbourne", "capital")

    # 2. Declare φ2: if a country has two capital entities, they must agree.
    phi2 = parse_gfd(
        "x:country -capital-> y:city; x -capital-> z:city",
        " => y.val = z.val",
        name="unique-capital",
    )

    # 3. Detect violations (Vio(Σ, G), Section 5.1).
    violations = det_vio([phi2], graph)
    print(f"Found {len(violations)} violation(s):")
    for violation in sorted(violations, key=str):
        match = violation.match
        print(
            f"  {violation.gfd_name}: {graph.get_attr(match['x'], 'val')} has "
            f"capitals {graph.get_attr(match['y'], 'val')} and "
            f"{graph.get_attr(match['z'], 'val')}"
        )

    # 4. Static analyses (Section 4): is a rule set coherent? redundant?
    clash = parse_gfd("x:country", " => x.val = 'Atlantis'", name="weird")
    clash2 = parse_gfd("x:country", " => x.val = 'Lemuria'", name="weirder")
    print("\nSatisfiability (Theorem 1):")
    print(f"  [phi2] satisfiable: {is_satisfiable([phi2])}")
    print(f"  [weird, weirder] satisfiable: {is_satisfiable([clash, clash2])}")

    weaker = parse_gfd(
        "x:country -capital-> y:city; x -capital-> z:city; x -capital-> w:city",
        " => y.val = z.val",
        name="three-capital-variant",
    )
    print("\nImplication (Theorem 5):")
    print(f"  phi2 implies the 3-capital variant: {implies([phi2], weaker)}")
    print(f"  and not vice versa: {not implies([weaker], phi2)}")


if __name__ == "__main__":
    main()
