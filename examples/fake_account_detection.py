"""Fake-account detection on a social graph (Example 5(6), φ6).

Builds the Pokec-like network with planted fake-account rings, then uses
the constant GFD φ6 to propagate "confirmed fake" labels: if a confirmed
fake x' and an account x co-like k blogs and both post blogs with the
same peculiar keyword, x must be fake too.  Unmarked ring members surface
as violations.

Run:  python examples/fake_account_detection.py
"""

from repro import accuracy, det_vio, rep_val, violation_entities
from repro.datasets import pokec_like


def main() -> None:
    dataset = pokec_like.build(scale=300, fake_rings=8, unmarked_rings=6, seed=7)
    graph = dataset.graph
    print(f"Social graph: |V|={graph.num_nodes}, |E|={graph.num_edges}")
    confirmed = sum(
        1 for node in graph.nodes_with_label("account")
        if graph.get_attr(node, "is_fake") == "true"
    )
    print(f"Accounts already marked fake: {confirmed}")

    # Sequential detection with φ6.
    violations = det_vio(dataset.gfds, graph)
    suspects = sorted(
        {v.match["x"] for v in violations}
    )
    print(f"\nφ6 flags {len(suspects)} unmarked account(s) as fake:")
    for account in suspects:
        partner = sorted({v.match["x'"] for v in violations
                          if v.match["x"] == account})
        print(f"  {account} (co-behaving with confirmed fake {partner[0]})")

    acc = accuracy(violation_entities(violations), dataset.truth_entities)
    print(f"\nprecision={acc.precision:.2f}  recall={acc.recall:.2f}")

    # The same detection, parallelised over 8 workers (Section 6.1).
    run = rep_val(dataset.gfds, graph, n=8)
    assert run.violations == violations
    print(
        f"\nrepVal with n=8: parallel time {run.parallel_time:,.0f} cost units "
        f"across {run.num_units} work units "
        f"(balance {run.report.balance:.2f})"
    )


if __name__ == "__main__":
    main()
