"""Continuous data quality: incremental detection + automatic repair.

Extensions built on the paper's machinery (DESIGN.md lists them under the
future-work items of Section 8): an :class:`IncrementalValidator` keeps
``Vio(Σ, G)`` current while the graph is edited — re-validating only the
affected data blocks, by the same locality argument that powers the
parallel algorithms — and ``apply_repairs`` proposes and applies minimal
value fixes.

Run:  python examples/continuous_quality.py
"""

from repro import PropertyGraph, det_vio, parse_gfd
from repro.core import IncrementalValidator
from repro.quality import apply_repairs, repair_plan


def main() -> None:
    graph = PropertyGraph()
    graph.add_node("au", "country", {"val": "Australia"})
    graph.add_node("canberra", "city", {"val": "Canberra"})
    graph.add_edge("au", "canberra", "capital")

    phi2 = parse_gfd(
        "x:country -capital-> y:city; x -capital-> z:city",
        " => y.val = z.val",
        name="unique-capital",
    )

    print("— live monitoring —")
    validator = IncrementalValidator([phi2], graph)
    print(f"initial violations: {len(validator.violations)}")

    validator.add_node("melbourne", "city", {"val": "Melbourne"})
    added = validator.add_edge("au", "melbourne", "capital")
    print(f"after inserting a second capital edge: +{len(added)} violations")

    removed_then = validator.set_attr("melbourne", "val", "Canberra")
    print(
        f"after renaming the city to agree: {len(validator.violations)} "
        f"violations remain"
    )
    validator.set_attr("melbourne", "val", "Melbourne")
    assert validator.violations == det_vio([phi2], graph)

    print("\n— automatic repair —")
    plan = repair_plan([phi2], graph)
    for fix in plan.fixes:
        print(f"  plan [{fix.kind}]: " +
              "; ".join(w.describe() for w in fix.writes))
    rounds, remaining = apply_repairs([phi2], graph)
    print(f"repaired in {rounds} round(s); remaining violations: "
          f"{len(remaining)}")
    print(f"capitals now: "
          f"{[graph.get_attr(n, 'val') for n in graph.nodes_with_label('city')]}")


if __name__ == "__main__":
    main()
