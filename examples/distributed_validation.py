"""Distributed validation: repVal vs disVal on a fragmented graph (§6).

Generates a synthetic power-law graph and a mined GFD workload, then runs
the full algorithm family — repVal/repran/repnop over the replicated graph
and disVal/disran/disnop over a fragmented one — reporting parallel time,
makespan balance and communication share as `n` grows.  This is a
miniature of the paper's Exp-1/Exp-3.

Run:  python examples/distributed_validation.py
"""

from repro import (
    det_vio,
    dis_nop,
    dis_ran,
    dis_val,
    generate_gfds,
    greedy_edge_cut_partition,
    power_law_graph,
    rep_nop,
    rep_ran,
    rep_val,
)


def main() -> None:
    graph = power_law_graph(1500, 4000, seed=3, domain_size=20)
    sigma = generate_gfds(graph, count=6, pattern_edges=2, seed=3)
    expected = det_vio(sigma, graph)
    print(f"Graph: |V|={graph.num_nodes}, |E|={graph.num_edges}; "
          f"‖Σ‖={len(sigma)}; |Vio|={len(expected)}\n")

    print(f"{'algorithm':10s} {'n':>3s} {'T (cost)':>12s} {'balance':>8s} "
          f"{'comm %':>7s}")
    for n in (4, 8, 16):
        runs = [
            rep_val(sigma, graph, n=n),
            rep_ran(sigma, graph, n=n),
            rep_nop(sigma, graph, n=n),
        ]
        fragmentation = greedy_edge_cut_partition(graph, n, seed=1)
        runs += [
            dis_val(sigma, fragmentation),
            dis_ran(sigma, fragmentation),
            dis_nop(sigma, fragmentation),
        ]
        for run in runs:
            assert run.violations == expected  # all variants agree on Vio
            print(
                f"{run.algorithm:10s} {n:3d} {run.parallel_time:12,.0f} "
                f"{run.report.balance:8.2f} "
                f"{run.report.communication_share * 100:6.1f}%"
            )
        print()

    print("Every algorithm computed the identical violation set; repVal is")
    print("fastest (no data exchange), disVal pays communication but scales.")


if __name__ == "__main__":
    main()
