"""Knowledge-graph cleaning with the paper's real-life GFDs (Fig. 7).

Builds the YAGO2-like and DBpedia-like datasets with seeded
inconsistencies — conflicting flights, double capitals, child-and-parent
cycles, cross-country mayors, disjoint types — then runs error detection
with the curated rule set and reports precision/recall against the seeded
ground truth.

Run:  python examples/knowledge_graph_cleaning.py
"""

from collections import Counter

from repro import accuracy, det_vio, violation_entities
from repro.datasets import dbpedia_like, yago_like


def report(dataset) -> None:
    print(f"=== {dataset.name} "
          f"(|V|={dataset.graph.num_nodes}, |E|={dataset.graph.num_edges}) ===")
    violations = det_vio(dataset.gfds, dataset.graph)
    by_rule = Counter(v.gfd_name for v in violations)
    for rule, count in sorted(by_rule.items()):
        print(f"  {rule:24s} {count:4d} violating matches")
    detected = violation_entities(violations)
    acc = accuracy(detected, dataset.truth_entities)
    print(f"  entities flagged: {len(detected)}  "
          f"precision={acc.precision:.2f}  recall={acc.recall:.2f}\n")


def show_sample_errors(dataset, limit=3) -> None:
    graph = dataset.graph
    print("Sample caught inconsistencies:")
    shown = 0
    for violation in sorted(det_vio(dataset.gfds, graph), key=str):
        match = violation.match
        if violation.gfd_name == "phi1-flight" and shown < limit:
            x3 = graph.get_attr(match["x3"], "val")
            y3 = graph.get_attr(match["y3"], "val")
            fid = graph.get_attr(match["x1"], "val")
            print(f"  flight {fid}: recorded destinations {x3} vs {y3}")
            shown += 1
        elif violation.gfd_name == "gfd3-mayor-party" and shown < limit:
            mayor = graph.get_attr(match["x"], "val")
            zc = graph.get_attr(match["z"], "val")
            zc2 = graph.get_attr(match["z'"], "val")
            print(f"  mayor {mayor}: city in {zc}, party in {zc2}")
            shown += 1
    print()


def main() -> None:
    yago = yago_like.build(scale=120, seed=42)
    report(yago)
    show_sample_errors(yago)

    dbpedia = dbpedia_like.build(scale=300, seed=42)
    report(dbpedia)


if __name__ == "__main__":
    main()
