"""Relational FDs and CFDs as GFDs (Section 3, Example 5(4)).

Encodes a relation instance as a graph (one node per tuple) and runs the
paper's CFD examples through the GFD machinery:

* the FD  R(zip → street),
* the variable CFD  R(country = 44, zip → street)          (φ′4),
* the constant CFD  R(country = 44, area_code = 131 → city = Edi)  (φ″4).

Run:  python examples/relational_cfds.py
"""

from repro import CFD, FD, det_vio, relation_to_graph
from repro.core.cfd import UNCONSTRAINED


ROWS = [
    {"country": 44, "zip": "EH8", "street": "Mayfield", "area_code": 131,
     "city": "Edi"},
    {"country": 44, "zip": "EH8", "street": "Queen St", "area_code": 131,
     "city": "Edi"},                                     # street clash (FD)
    {"country": 44, "zip": "G1", "street": "High St", "area_code": 131,
     "city": "Glasgow"},                                 # area code 131 ⇒ Edi!
    {"country": 1, "zip": "10001", "street": "Broadway", "area_code": 212,
     "city": "NYC"},
    {"country": 1, "zip": "10001", "street": "5th Ave", "area_code": 212,
     "city": "NYC"},                                     # clash outside UK
]


def main() -> None:
    graph = relation_to_graph("R", ROWS)
    print(f"Relation R encoded as {graph.num_nodes} tuple nodes\n")

    fd = FD("R", ("zip",), ("street",)).to_gfd(name="FD zip->street")
    variable_cfd = CFD(
        relation="R", lhs=("country", "zip"), rhs="street",
        pattern_tuple={"country": 44, "zip": UNCONSTRAINED,
                       "street": UNCONSTRAINED},
    ).to_gfd(name="CFD(44, zip->street)")
    constant_cfd = CFD(
        relation="R", lhs=("country", "area_code"), rhs="city",
        pattern_tuple={"country": 44, "area_code": 131, "city": "Edi"},
    ).to_gfd(name="CFD(44,131->Edi)")

    for gfd in (fd, variable_cfd, constant_cfd):
        violations = det_vio([gfd], graph)
        tuples = sorted({node for v in violations for node in v.nodes()})
        print(f"{gfd.name}:")
        print(f"  {len(violations)} violating match(es) over tuples {tuples}")
        for violation in sorted(violations, key=str)[:2]:
            rows = {var: ROWS[node] for var, node in violation.assignment}
            for var, row in rows.items():
                print(f"    {var} = {row}")
        print()

    print("Note the scoping: the FD flags the NYC street clash too, while")
    print("the conditional rule (country = 44) correctly ignores it.")


if __name__ == "__main__":
    main()
