"""Figure 5(a–c): parallel time vs. number of processors ``n``.

The paper fixes |Q|=5, ‖Σ‖=50 and sweeps n from 4 to 20 on DBpedia,
YAGO2 and Pokec, comparing repVal/repran/repnop and disVal/disran/disnop.
Shapes to reproduce: all algorithms speed up with n (repVal ~3.7×,
disVal ~2.4× over the sweep); optimised variants beat ``*ran``/``*nop``;
repVal beats disVal (no data exchange).
"""

from __future__ import annotations

import pytest

from repro import (
    dis_nop,
    dis_ran,
    dis_val,
    greedy_edge_cut_partition,
    rep_nop,
    rep_ran,
    rep_val,
)

from _bench_utils import N_SWEEP, emit_table


@pytest.fixture(scope="module")
def sweep_results(bench_datasets, bench_workloads):
    results = {}
    for name, dataset in bench_datasets.items():
        graph = dataset.graph
        sigma = bench_workloads[name]
        rows = []
        expected = None
        for n in N_SWEEP:
            fragmentation = greedy_edge_cut_partition(graph, n, seed=1)
            runs = {
                "repVal": rep_val(sigma, graph, n=n),
                "repran": rep_ran(sigma, graph, n=n),
                "repnop": rep_nop(sigma, graph, n=n),
                "disVal": dis_val(sigma, fragmentation),
                "disran": dis_ran(sigma, fragmentation),
                "disnop": dis_nop(sigma, fragmentation),
            }
            if expected is None:
                expected = runs["repVal"].violations
            assert all(r.violations == expected for r in runs.values())
            rows.append(
                (n, *(round(runs[a].parallel_time) for a in
                      ("repVal", "repran", "repnop",
                       "disVal", "disran", "disnop")))
            )
        results[name] = rows
    return results


@pytest.mark.parametrize("dataset_name", ["DBpedia", "YAGO2", "Pokec"])
def test_fig5_varying_n(dataset_name, sweep_results, benchmark,
                        bench_datasets, bench_workloads):
    rows = sweep_results[dataset_name]
    emit_table(
        f"fig5_varying_n_{dataset_name}",
        ["n", "repVal", "repran", "repnop", "disVal", "disran", "disnop"],
        rows,
    )
    by_algo = {  # column → series over n
        algo: [row[i + 1] for row in rows]
        for i, algo in enumerate(
            ("repVal", "repran", "repnop", "disVal", "disran", "disnop")
        )
    }
    # Shape 1: parallel scalability — time falls from n=4 to n=20.
    assert by_algo["repVal"][-1] < by_algo["repVal"][0]
    assert by_algo["disVal"][-1] < by_algo["disVal"][0]
    speedup_rep = by_algo["repVal"][0] / by_algo["repVal"][-1]
    speedup_dis = by_algo["disVal"][0] / by_algo["disVal"][-1]
    assert speedup_rep > 2.0, f"repVal speedup only {speedup_rep:.2f}"
    assert speedup_dis > 1.5, f"disVal speedup only {speedup_dis:.2f}"
    # Shape 2: optimisation gaps at every n.
    for i in range(len(rows)):
        assert by_algo["repVal"][i] <= by_algo["repnop"][i]
        assert by_algo["disVal"][i] <= by_algo["disnop"][i]
    # Shape 3: repVal ≤ disVal (no data exchange).
    for i in range(len(rows)):
        assert by_algo["repVal"][i] <= by_algo["disVal"][i]

    # Wall-time datum for one representative configuration (n=16).
    graph = bench_datasets[dataset_name].graph
    sigma = bench_workloads[dataset_name]
    benchmark.pedantic(
        lambda: rep_val(sigma, graph, n=16), rounds=1, iterations=1
    )
