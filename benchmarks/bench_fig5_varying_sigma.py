"""Figure 5(d, f, h): parallel time vs. ‖Σ‖ (number of GFDs).

The paper fixes |Q|=5, n=16 and sweeps ‖Σ‖ from 50 to 100 (scaled here to
4..12).  Shapes: all algorithms take longer as Σ grows; repVal/disVal stay
below their ``*ran``/``*nop`` variants throughout.
"""

from __future__ import annotations

import pytest

from repro import (
    dis_nop,
    dis_ran,
    dis_val,
    generate_gfds,
    greedy_edge_cut_partition,
    rep_nop,
    rep_ran,
    rep_val,
)

from _bench_utils import emit_table

SIGMA_SWEEP = (4, 6, 8, 10, 12)
N = 16


@pytest.mark.parametrize("dataset_name", ["DBpedia", "YAGO2", "Pokec"])
def test_fig5_varying_sigma(dataset_name, bench_datasets, benchmark):
    graph = bench_datasets[dataset_name].graph
    fragmentation = greedy_edge_cut_partition(graph, N, seed=1)
    rows = []
    for count in SIGMA_SWEEP:
        sigma = generate_gfds(graph, count=count, pattern_edges=2, seed=2)
        runs = {
            "repVal": rep_val(sigma, graph, n=N),
            "repran": rep_ran(sigma, graph, n=N),
            "repnop": rep_nop(sigma, graph, n=N),
            "disVal": dis_val(sigma, fragmentation),
            "disran": dis_ran(sigma, fragmentation),
            "disnop": dis_nop(sigma, fragmentation),
        }
        expected = runs["repVal"].violations
        assert all(r.violations == expected for r in runs.values())
        rows.append(
            (count, *(round(runs[a].parallel_time) for a in
                      ("repVal", "repran", "repnop",
                       "disVal", "disran", "disnop")))
        )
    emit_table(
        f"fig5_varying_sigma_{dataset_name}",
        ["‖Σ‖", "repVal", "repran", "repnop", "disVal", "disran", "disnop"],
        rows,
    )
    rep_series = [row[1] for row in rows]
    nop_series = [row[3] for row in rows]
    dis_series = [row[4] for row in rows]
    dnop_series = [row[6] for row in rows]
    # Shape 1: larger Σ costs more end-to-end.
    assert rep_series[-1] > rep_series[0]
    assert dis_series[-1] > dis_series[0]
    # Shape 2: optimised variants win at every sweep point.
    assert all(r <= p for r, p in zip(rep_series, nop_series))
    assert all(d <= p for d, p in zip(dis_series, dnop_series))

    sigma = generate_gfds(graph, count=SIGMA_SWEEP[-1], pattern_edges=2, seed=2)
    benchmark.pedantic(
        lambda: rep_val(sigma, graph, n=N), rounds=1, iterations=1
    )
