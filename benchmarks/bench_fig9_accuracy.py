"""Figure 9 (Appendix): accuracy and time — GFDs vs GCFDs vs BigDansing.

The paper injects 2% noise into YAGO2 (attribute / type / representational
inconsistencies), constructs 10 GFDs (of which 7 are expressible as
GCFDs) and hard-codes the same GFDs into BigDansing UDFs.  Reported:

    model        recall  prec.  time
    GFD          0.91    1.0    131s
    GCFD         0.57    1.0    106s   (lower recall: inexpressible rules)
    BigDansing   0.91    1.0    609s   (same accuracy, 4.6× slower)

Shapes to reproduce: GFD recall > GCFD recall, both precisions 1.0,
BigDansing's accuracy equal to GFD's but with a much larger processing
volume (rows touched vs matcher steps).
"""

from __future__ import annotations

import time


from repro import accuracy, det_vio, violation_entities
from repro.datasets import yago_like
from repro.matching.vf2 import MatchStats
from repro.quality import gfds_to_gcfds, validate_bigdansing, validate_gcfd
from repro.relational import EngineStats

from _bench_utils import emit_table


def test_fig9_accuracy(benchmark):
    dataset = yago_like.build(scale=160, seed=9)
    graph, sigma, truth = dataset.graph, dataset.gfds, dataset.truth_entities

    # --- GFD (native) ------------------------------------------------
    stats = MatchStats()
    t0 = time.perf_counter()
    gfd_vio = det_vio(sigma, graph, stats=stats)
    gfd_time = time.perf_counter() - t0
    gfd_acc = accuracy(violation_entities(gfd_vio), truth)

    # --- GCFD (expressible subset) ------------------------------------
    expressible, rejected = gfds_to_gcfds(sigma)
    t0 = time.perf_counter()
    gcfd_vio = validate_gcfd(sigma, graph)
    gcfd_time = time.perf_counter() - t0
    gcfd_acc = accuracy(violation_entities(gcfd_vio), truth)

    # --- BigDansing-style UDF plans ------------------------------------
    engine_stats = EngineStats()
    t0 = time.perf_counter()
    big_vio = validate_bigdansing(sigma, graph, engine_stats)
    big_time = time.perf_counter() - t0
    big_acc = accuracy(violation_entities(big_vio), truth)

    emit_table(
        "fig9_accuracy",
        ["model", "recall", "prec.", "time (s)", "work measure"],
        [
            ("GFD", f"{gfd_acc.recall:.2f}", f"{gfd_acc.precision:.2f}",
             f"{gfd_time:.3f}", f"{stats.steps} matcher steps"),
            ("GCFD", f"{gcfd_acc.recall:.2f}", f"{gcfd_acc.precision:.2f}",
             f"{gcfd_time:.3f}", f"{len(expressible)}/{len(sigma)} rules"),
            ("BigDansing", f"{big_acc.recall:.2f}", f"{big_acc.precision:.2f}",
             f"{big_time:.3f}", f"{engine_stats.total} rows touched"),
        ],
    )

    # Shape 1: GFDs catch more than GCFDs (inexpressible rules exist).
    assert rejected, "expected some GFDs inexpressible as GCFDs"
    assert gfd_acc.recall > gcfd_acc.recall
    # Shape 2: precision is perfect for all three.
    assert gfd_acc.precision == 1.0
    assert gcfd_acc.precision == 1.0
    assert big_acc.precision == 1.0
    # Shape 3: BigDansing finds the same violations but does far more work.
    # Work is compared on the deterministic measures (rows touched vs
    # matcher steps); sub-second wall clocks are too noisy to assert on.
    assert big_vio == gfd_vio
    assert big_acc.recall == gfd_acc.recall
    assert engine_stats.total > 2 * stats.steps

    benchmark.pedantic(
        lambda: validate_bigdansing(sigma, graph), rounds=1, iterations=1
    )
