"""Fault-recovery overhead: a crashed-and-recovered run vs fault-free.

PR 10's supervised execution plane promises that a worker crash costs a
bounded detour — detect the dead pipe, respawn the slot, re-ship its
shard, requeue the in-flight units — rather than the run.  This bench
pins that promise as a wall-clock ceiling: a run with one injected hard
crash (deterministic :class:`~repro.parallel.faults.FaultPlan`) must
stay within ``OVERHEAD_CEILING`` times the fault-free run *plus* a
fixed ``RESPAWN_ALLOWANCE`` (a replacement worker costs one interpreter
start-up regardless of workload size, so a pure ratio would be
meaningless against a tiny baseline), with violations asserted
identical on every round and ``ShippingStats.faults`` proving the
crash actually fired.

The ratio bar is enforced whenever ≥ 2 CPUs are usable; single-core
runners (where wall clock is mostly scheduler noise) only report.
``benchmarks/results/fault_recovery.json`` accumulates the trajectory
across PRs via the CI artifact upload.
"""

from __future__ import annotations

import os
import statistics
import time
import warnings

from repro import ValidationSession, det_vio, generate_gfds, power_law_graph
from repro.parallel import FaultPlan, FaultPolicy
from repro.parallel.executors import usable_cpus

from _bench_utils import emit_json, emit_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: a recovered run may cost at most this multiple of the fault-free run,
#: plus the fixed respawn allowance below
OVERHEAD_CEILING = 3.0

#: fixed per-recovery budget (seconds): respawning one worker costs an
#: interpreter start-up + one shard re-ship whatever the workload size
RESPAWN_ALLOWANCE = 1.0

ROUNDS = 3 if QUICK else 5


def test_crash_recovery_overhead():
    nodes, edges = (900, 1800) if QUICK else (2000, 4000)
    graph = power_law_graph(nodes, edges, seed=10, domain_size=25)
    sigma = generate_gfds(graph, count=5, pattern_edges=2, seed=10)
    expected = det_vio(sigma, graph)

    def run_once(plan):
        """One cold validate under ``plan``; returns (seconds, run)."""
        policy = FaultPolicy(
            plan=plan, backoff=0.01, heartbeat_interval=0.05
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with ValidationSession(
                graph, sigma, executor="process", processes=2,
                fault_policy=policy,
            ) as session:
                started = time.perf_counter()
                run = session.validate(n=2)
                elapsed = time.perf_counter() - started
        assert run.violations == expected
        return elapsed, run

    clean_times, fault_times = [], []
    faults = None
    for _ in range(ROUNDS):
        seconds, run = run_once(None)
        assert not run.shipping.faults.faulted
        clean_times.append(seconds)

        seconds, run = run_once(FaultPlan(crashes=((0, 0, 1),)))
        faults = run.shipping.faults
        assert faults.crashes >= 1  # the injection actually fired
        assert faults.respawns >= 1
        assert faults.retried_units > 0
        fault_times.append(seconds)

    clean = statistics.median(clean_times)
    recovered = statistics.median(fault_times)
    ceiling = clean * OVERHEAD_CEILING + RESPAWN_ALLOWANCE
    enforced = usable_cpus() >= 2

    emit_table(
        "fault_recovery",
        ["run", "median s", "crashes", "respawns", "retried units"],
        [
            ["fault-free", f"{clean:.3f}", 0, 0, 0],
            [
                "crash+recover", f"{recovered:.3f}", faults.crashes,
                faults.respawns, faults.retried_units,
            ],
            ["ceiling", f"{ceiling:.3f}", "", "",
             f"{OVERHEAD_CEILING}x + {RESPAWN_ALLOWANCE}s"],
        ],
    )
    emit_json("fault_recovery", {
        "nodes": nodes,
        "edges": edges,
        "rounds": ROUNDS,
        "fault_free_s": clean,
        "recovered_s": recovered,
        "overhead_ratio": recovered / clean,
        "overhead_ceiling": OVERHEAD_CEILING,
        "respawn_allowance_s": RESPAWN_ALLOWANCE,
        "ceiling_s": ceiling,
        "ceiling_enforced": enforced,
        "crashes": faults.crashes,
        "respawns": faults.respawns,
        "retried_units": faults.retried_units,
    })
    if enforced:
        assert recovered <= ceiling, (
            f"crash recovery took {recovered:.3f}s against a "
            f"{ceiling:.3f}s ceiling ({OVERHEAD_CEILING}x fault-free "
            f"+ {RESPAWN_ALLOWANCE}s respawn allowance)"
        )
