"""Session layer headline: warm repeated validation vs. cold per-call runs.

The paper's workload is *repeated* validation of a fixed Σ.  The
stateless ``rep_val`` pays every fixed cost per call — process-pool
start-up, full shard shipping, workload estimation, block
materialisation — while a warm :class:`~repro.session.ValidationSession`
pays them once: the second ``validate()`` reuses the pool (same worker
PIDs), every resident shard (zero block-shares shipped), the workload
estimate, and the materialised blocks.

Measured here as wall-clock medians at 4 (simulated) workers over a real
process pool; violations are asserted identical everywhere, zero-ship +
PID reuse are asserted on every warm run, and the warm-beats-cold bar is
asserted whenever ≥ 2 CPUs are usable (single-core runners only report).
"""

from __future__ import annotations

import os
import statistics
import time
import warnings

import pytest

from repro import ValidationSession, det_vio, generate_gfds, power_law_graph, rep_val
from repro.parallel import shm_available
from repro.parallel.executors import usable_cpus

from _bench_utils import emit_json, emit_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: warm must beat cold at least this much before the bar is enforced
WARM_SPEEDUP_BAR = 1.2


def test_session_warm_beats_cold_repval(benchmark):
    nodes, edges = (900, 1800) if QUICK else (2000, 4000)
    rounds = 3
    graph = power_law_graph(nodes, edges, seed=10, domain_size=25)
    sigma = generate_gfds(graph, count=5, pattern_edges=2, seed=10)
    expected = det_vio(sigma, graph)

    # Cold: a fresh pool + full shards + fresh estimation, every call.
    cold_times = []
    for _ in range(rounds):
        started = time.perf_counter()
        run = rep_val(sigma, graph, n=4, executor="process", processes=4)
        cold_times.append(time.perf_counter() - started)
        assert run.violations == expected

    # Warm: one session; the first call pays the fixed costs, the rest reuse.
    warm_times = []
    with ValidationSession(
        graph, sigma, executor="process", processes=4
    ) as session:
        first = session.validate(n=4)
        assert first.violations == expected
        assert first.shipping.full > 0  # the cold half of the session
        pids = first.shipping.worker_pids
        for _ in range(rounds):
            started = time.perf_counter()
            run = session.validate(n=4)
            warm_times.append(time.perf_counter() - started)
            assert run.violations == expected
            assert run.report == first.report  # warmth: wall-clock only
            # The acceptance pins: zero block-shares, same worker PIDs.
            assert run.shipping.full == 0
            assert run.shipping.delta == 0
            assert run.shipping.shipped_nodes == 0
            assert run.shipping.worker_pids == pids

        cold = statistics.median(cold_times)
        warm = statistics.median(warm_times)
        speedup = cold / warm if warm else float("inf")
        cpus = usable_cpus()
        emit_table(
            "session_warm_vs_cold",
            ["mode", "median wall s", "speedup", "workers", "cpus"],
            [
                ("cold rep_val (pool+ship+estimate per call)",
                 f"{cold:.3f}", "1.00x", 4, cpus),
                ("warm session.validate()",
                 f"{warm:.3f}", f"{speedup:.2f}x", 4, cpus),
            ],
        )
        if cpus >= 2:
            assert speedup > WARM_SPEEDUP_BAR, (
                f"warm session only {speedup:.2f}x faster than cold rep_val "
                f"on {cpus} CPUs"
            )
        else:
            print(f"(warm bar skipped: only {cpus} usable CPU(s))")

        benchmark.pedantic(
            lambda: session.validate(n=4), rounds=1, iterations=1
        )


#: a mapped cold start may not cost more than this multiple of the
#: pickled one — the floor that keeps the zero-copy path honest even on
#: runners where the shards are too small for shm to win outright.
COLD_START_FLOOR = 3.0


@pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable on this host"
)
def test_cold_start_ship_modes():
    """Cold-start section: pickle vs shm shard transport, first run only.

    The shard plane's claim is about *warmup*: a cold ``validate()``
    ships every worker its full shard, and with ``ship_mode="shm"`` that
    shipment is a zero-copy mapping — ``shard_bytes`` must be ~0 with
    every byte accounted under ``mapped_bytes`` instead, and the mapped
    cold start must stay within :data:`COLD_START_FLOOR` of the pickled
    one.  Results land in ``results/session_cold_start.txt`` and
    ``results/session_shipping.json``.
    """
    nodes, edges = (900, 1800) if QUICK else (2000, 4000)
    rounds = 3
    graph = power_law_graph(nodes, edges, seed=10, domain_size=25)
    sigma = generate_gfds(graph, count=5, pattern_edges=2, seed=10)
    expected = det_vio(sigma, graph)

    timings = {}
    shipping = {}
    for mode in ("pickle", "shm"):
        walls = []
        for _ in range(rounds):
            started = time.perf_counter()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                with ValidationSession(
                    graph, sigma, executor="process", processes=4,
                    ship_mode=mode,
                ) as session:
                    run = session.validate(n=4)
            walls.append(time.perf_counter() - started)
            assert run.violations == expected
        timings[mode] = statistics.median(walls)
        stats = run.shipping
        shipping[mode] = {
            "full": stats.full,
            "shard_bytes": stats.shard_bytes,
            "mapped": stats.mapped,
            "mapped_bytes": stats.mapped_bytes,
            "sigma_bytes": stats.sigma_bytes,
            "median_cold_wall_s": timings[mode],
        }

    # The accounting pins: mapped volume is not shipped volume.
    assert shipping["shm"]["shard_bytes"] == 0, shipping["shm"]
    assert shipping["shm"]["mapped_bytes"] > 0, shipping["shm"]
    assert shipping["pickle"]["mapped_bytes"] == 0, shipping["pickle"]
    assert shipping["pickle"]["shard_bytes"] > 0, shipping["pickle"]

    ratio = timings["shm"] / timings["pickle"] if timings["pickle"] else 1.0
    cpus = usable_cpus()
    emit_table(
        "session_cold_start",
        ["ship mode", "median cold wall s", "shard B", "mapped B", "cpus"],
        [
            ("pickle", f"{timings['pickle']:.3f}",
             shipping["pickle"]["shard_bytes"],
             shipping["pickle"]["mapped_bytes"], cpus),
            ("shm", f"{timings['shm']:.3f}",
             shipping["shm"]["shard_bytes"],
             shipping["shm"]["mapped_bytes"], cpus),
        ],
    )
    emit_json("session_shipping", {
        "quick": QUICK,
        "workers": 4,
        "usable_cpus": cpus,
        "cold_start": shipping,
        "shm_over_pickle_wall_ratio": ratio,
    })
    assert ratio <= COLD_START_FLOOR, (
        f"shm cold start {ratio:.2f}x the pickled one "
        f"(floor {COLD_START_FLOOR}x)"
    )
