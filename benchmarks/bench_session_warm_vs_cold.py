"""Session layer headline: warm repeated validation vs. cold per-call runs.

The paper's workload is *repeated* validation of a fixed Σ.  The
stateless ``rep_val`` pays every fixed cost per call — process-pool
start-up, full shard shipping, workload estimation, block
materialisation — while a warm :class:`~repro.session.ValidationSession`
pays them once: the second ``validate()`` reuses the pool (same worker
PIDs), every resident shard (zero block-shares shipped), the workload
estimate, and the materialised blocks.

Measured here as wall-clock medians at 4 (simulated) workers over a real
process pool; violations are asserted identical everywhere, zero-ship +
PID reuse are asserted on every warm run, and the warm-beats-cold bar is
asserted whenever ≥ 2 CPUs are usable (single-core runners only report).
"""

from __future__ import annotations

import os
import statistics
import time

from repro import ValidationSession, det_vio, generate_gfds, power_law_graph, rep_val
from repro.parallel.executors import usable_cpus

from _bench_utils import emit_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: warm must beat cold at least this much before the bar is enforced
WARM_SPEEDUP_BAR = 1.2


def test_session_warm_beats_cold_repval(benchmark):
    nodes, edges = (900, 1800) if QUICK else (2000, 4000)
    rounds = 3
    graph = power_law_graph(nodes, edges, seed=10, domain_size=25)
    sigma = generate_gfds(graph, count=5, pattern_edges=2, seed=10)
    expected = det_vio(sigma, graph)

    # Cold: a fresh pool + full shards + fresh estimation, every call.
    cold_times = []
    for _ in range(rounds):
        started = time.perf_counter()
        run = rep_val(sigma, graph, n=4, executor="process", processes=4)
        cold_times.append(time.perf_counter() - started)
        assert run.violations == expected

    # Warm: one session; the first call pays the fixed costs, the rest reuse.
    warm_times = []
    with ValidationSession(
        graph, sigma, executor="process", processes=4
    ) as session:
        first = session.validate(n=4)
        assert first.violations == expected
        assert first.shipping.full > 0  # the cold half of the session
        pids = first.shipping.worker_pids
        for _ in range(rounds):
            started = time.perf_counter()
            run = session.validate(n=4)
            warm_times.append(time.perf_counter() - started)
            assert run.violations == expected
            assert run.report == first.report  # warmth: wall-clock only
            # The acceptance pins: zero block-shares, same worker PIDs.
            assert run.shipping.full == 0
            assert run.shipping.delta == 0
            assert run.shipping.shipped_nodes == 0
            assert run.shipping.worker_pids == pids

        cold = statistics.median(cold_times)
        warm = statistics.median(warm_times)
        speedup = cold / warm if warm else float("inf")
        cpus = usable_cpus()
        emit_table(
            "session_warm_vs_cold",
            ["mode", "median wall s", "speedup", "workers", "cpus"],
            [
                ("cold rep_val (pool+ship+estimate per call)",
                 f"{cold:.3f}", "1.00x", 4, cpus),
                ("warm session.validate()",
                 f"{warm:.3f}", f"{speedup:.2f}x", 4, cpus),
            ],
        )
        if cpus >= 2:
            assert speedup > WARM_SPEEDUP_BAR, (
                f"warm session only {speedup:.2f}x faster than cold rep_val "
                f"on {cpus} CPUs"
            )
        else:
            print(f"(warm bar skipped: only {cpus} usable CPU(s))")

        benchmark.pedantic(
            lambda: session.validate(n=4), rounds=1, iterations=1
        )
