"""Section 4 micro-benchmarks: satisfiability and implication at scale.

The paper establishes coNP/NP completeness (Theorems 1 and 5) with
tractable special cases (Corollaries 4 and 8).  This bench measures the
decision procedures on growing rule families and checks the tractable
fast paths actually short-circuit.
"""

from __future__ import annotations

import time


from repro import implies, is_satisfiable, minimal_cover, parse_gfd
from repro.core.satisfiability import trivially_satisfiable

from _bench_utils import emit_table


def chain_rules(length: int):
    """x.A0=c ⇒ x.A1 ⇒ ... a chain of constant GFDs over one pattern."""
    rules = [parse_gfd("x:tau", " => x.A0 = 'c'", name="base")]
    for i in range(length):
        rules.append(
            parse_gfd(
                "x:tau",
                f"x.A{i} = 'c' => x.A{i + 1} = 'c'",
                name=f"step{i}",
            )
        )
    return rules


def tree_rules(count: int):
    """Variable GFDs over tree patterns — Corollary 4's tractable case."""
    return [
        parse_gfd(
            f"x:t{i} -e-> y:u{i}",
            "x.A = y.A => x.B = y.B",
            name=f"tree{i}",
        )
        for i in range(count)
    ]


def test_reasoning_scaling(benchmark):
    rows = []
    for size in (2, 4, 8, 16):
        sigma = chain_rules(size)
        t0 = time.perf_counter()
        sat = is_satisfiable(sigma)
        sat_time = time.perf_counter() - t0
        target = parse_gfd("x:tau", f"x.A0 = 'c' => x.A{size} = 'c'")
        t0 = time.perf_counter()
        implied = implies(sigma, target)
        imp_time = time.perf_counter() - t0
        rows.append((size, sat, f"{sat_time * 1e3:.2f}ms",
                     implied, f"{imp_time * 1e3:.2f}ms"))
        assert sat
        assert implied  # the chain composes transitively (Lemma 7)
    emit_table(
        "reasoning_scaling",
        ["chain length", "satisfiable", "sat time", "implied", "imp time"],
        rows,
    )

    # Corollary 4 fast paths never reach the canonical-model machinery.
    variable_only = tree_rules(64)
    assert trivially_satisfiable(variable_only)
    t0 = time.perf_counter()
    assert is_satisfiable(variable_only)
    assert time.perf_counter() - t0 < 0.05  # syntactic short-circuit

    # Workload reduction via implication (Appendix): the redundant rule
    # in a chain plus its composition is dropped by the minimal cover.
    sigma = chain_rules(4)
    composed = parse_gfd("x:tau", "x.A0 = 'c' => x.A4 = 'c'", name="comp")
    cover = minimal_cover(sigma + [composed])
    assert len(cover) == len(sigma)

    benchmark.pedantic(
        lambda: is_satisfiable(chain_rules(16)), rounds=1, iterations=1
    )


def test_example7_example8_families(benchmark):
    """The paper's own reasoning examples, timed."""
    q8 = "x:tau -l-> y:tau; x -l-> z:tau; y -l-> z"
    q9 = q8 + "; y -l-> w:tau; z -l-> w"
    phi8 = parse_gfd(q8, " => x.A = 'c'")
    phi9 = parse_gfd(q9, " => x.A = 'd'")
    sigma = [
        parse_gfd(q8, "x.A = y.A => x.B = y.B"),
        parse_gfd(q9, "x.B = y.B => z.C = w.C"),
    ]
    phi11 = parse_gfd(q9, "x.A = y.A => z.C = w.C")

    assert not is_satisfiable([phi8, phi9])
    assert implies(sigma, phi11)

    benchmark.pedantic(
        lambda: (is_satisfiable([phi8, phi9]), implies(sigma, phi11)),
        rounds=1,
        iterations=1,
    )
