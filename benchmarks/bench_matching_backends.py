"""Matching-backend comparison: legacy dict-of-dicts vs. GraphSnapshot.

Times the workload every figure in the paper bottoms out in — repeated
subgraph matching over one graph — on the fig6-scale synthetic graph
(3k nodes / 6k edges, the sweep's midpoint), for both matcher backends:

* ``legacy``  — candidate filtering and search over the PropertyGraph's
  nested dicts, re-counting neighbour labels per candidate per sweep;
* ``snapshot`` — the indexed path: one CSR/pair-index snapshot build,
  then interned-int matching (see graph/snapshot.py).

Reported numbers: the one-time snapshot build, the cold first sweep
(build included), and the steady-state sweep (the hot path).  The
steady-state speedup is asserted ≥ 2×; violation-set equality is
asserted here and locked in on random inputs by
``tests/test_matcher_differential.py``.

Set ``REPRO_BENCH_QUICK=1`` (CI) to cut repetitions.
"""

from __future__ import annotations

import os
import time

from repro import generate_gfds, power_law_graph
from repro.core.validation import det_vio
from repro.graph.snapshot import GraphSnapshot
from repro.matching import MatchStats

from _bench_utils import emit_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
#: fig6-scale graph (the |G| sweep's midpoint) and its rule workload
GRAPH_SIZE = (3000, 6000)
SIGMA_SIZE = 6
SWEEPS = 3 if QUICK else 7


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_matching_backends(benchmark):
    graph = power_law_graph(*GRAPH_SIZE, seed=6, domain_size=25)
    sigma = generate_gfds(graph, count=SIGMA_SIZE, pattern_edges=2, seed=6)

    build_time = _best_of(1 if QUICK else 3, lambda: GraphSnapshot(graph))

    # Cold: first validation sweep pays the snapshot build.
    cold_start = time.perf_counter()
    graph.snapshot()
    cold_vio = det_vio(sigma, graph, backend="snapshot")
    cold_time = time.perf_counter() - cold_start

    legacy_vio = det_vio(sigma, graph, backend="legacy")
    assert cold_vio == legacy_vio  # identical violation sets, both backends

    legacy_time = _best_of(
        SWEEPS, lambda: det_vio(sigma, graph, backend="legacy")
    )
    snapshot_time = _best_of(
        SWEEPS, lambda: det_vio(sigma, graph, backend="snapshot")
    )

    # Search effort: candidate extensions attempted per full sweep.
    legacy_stats, snapshot_stats = MatchStats(), MatchStats()
    det_vio(sigma, graph, stats=legacy_stats, backend="legacy")
    det_vio(sigma, graph, stats=snapshot_stats, backend="snapshot")

    speedup = legacy_time / snapshot_time if snapshot_time else float("inf")
    rows = [
        ("legacy", f"{legacy_time * 1e3:.2f}", "-", legacy_stats.steps, "1.0x"),
        (
            "snapshot",
            f"{snapshot_time * 1e3:.2f}",
            f"{build_time * 1e3:.1f}",
            snapshot_stats.steps,
            f"{speedup:.1f}x",
        ),
    ]
    emit_table(
        "matching_backends",
        ["backend", "sweep ms", "build ms", "steps", "speedup"],
        rows,
    )
    print(
        f"cold first sweep (build incl.): {cold_time * 1e3:.1f} ms; "
        "break-even after "
        f"~{build_time / max(legacy_time - snapshot_time, 1e-9):.1f} sweeps"
    )

    # The acceptance bar: the indexed hot path is at least 2x the legacy
    # one on the fig6-scale graph (measured margin is far larger).
    assert speedup >= 2.0, f"snapshot backend only {speedup:.2f}x faster"
    # The index also prunes the search itself, not just candidate setup.
    assert snapshot_stats.steps <= legacy_stats.steps
    assert snapshot_stats.matches == legacy_stats.matches

    benchmark.pedantic(
        lambda: det_vio(sigma, graph, backend="snapshot"), rounds=1, iterations=1
    )
