"""Shared fixtures for the benchmark harness.

Every module regenerates one of the paper's tables/figures (see the
per-experiment index in DESIGN.md).  Graphs are scaled-down stand-ins
(DESIGN.md §1.3) and "times" are the simulated cluster's deterministic
cost units, so the *shapes* — orderings, speedup ratios, crossovers — are
reproducible on any machine; pytest-benchmark additionally records wall
time for one representative configuration per figure.

Each bench writes its series to ``benchmarks/results/<name>.txt`` and
prints it (visible with ``pytest -s``).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro import generate_gfds, power_law_graph
from repro.datasets import dbpedia_like, pokec_like, yago_like


@pytest.fixture(scope="session")
def bench_datasets() -> Dict[str, object]:
    """The three real-life dataset stand-ins at benchmark scale."""
    return {
        "DBpedia": dbpedia_like.build(scale=700, seed=1),
        "YAGO2": yago_like.build(scale=260, seed=1),
        "Pokec": pokec_like.build(scale=600, seed=1),
    }


@pytest.fixture(scope="session")
def bench_workloads(bench_datasets):
    """Generated Σ per dataset (‖Σ‖=8, |Q|=2 scaled from the paper's 50/5)."""
    return {
        name: generate_gfds(ds.graph, count=8, pattern_edges=2, seed=2)
        for name, ds in bench_datasets.items()
    }


@pytest.fixture(scope="session")
def synthetic_graph():
    """The synthetic power-law graph used by Fig. 6/8-style sweeps."""
    return power_law_graph(3000, 6000, seed=5, domain_size=25)
