"""Figure 6: disVal scalability on synthetic graphs, varying |G|.

The paper sweeps |G| from (10M, 20M) to (50M, 100M) with n=16 and 50
GFDs; scaled here to (1k, 2k) … (5k, 10k) with ‖Σ‖=6 (DESIGN.md §1.3).
Shapes: (1) time grows with |G| for every algorithm; (2) disVal stays
below disran and disnop across the sweep (paper: 1.9× and 1.5×); and
(3) sequential detVio blows past its budget on graphs the parallel
algorithms still handle.
"""

from __future__ import annotations


from repro import (
    dis_nop,
    dis_ran,
    dis_val,
    generate_gfds,
    greedy_edge_cut_partition,
    power_law_graph,
)

from _bench_utils import emit_table

SIZES = ((1000, 2000), (2000, 4000), (3000, 6000), (4000, 8000), (5000, 10000))
N = 16


def test_fig6_scalability(benchmark):
    rows = []
    series = {"disVal": [], "disran": [], "disnop": []}
    # One fixed rule set for the whole sweep (the paper generates its 50
    # synthetic-graph GFDs once, over the shared label alphabet L); mining
    # it on the smallest graph keeps its patterns valid on every size.
    base = power_law_graph(*SIZES[0], seed=6, domain_size=25)
    sigma = generate_gfds(base, count=6, pattern_edges=2, seed=6)
    for num_nodes, num_edges in SIZES:
        graph = power_law_graph(num_nodes, num_edges, seed=6, domain_size=25)
        fragmentation = greedy_edge_cut_partition(graph, N, seed=1)
        runs = {
            "disVal": dis_val(sigma, fragmentation),
            "disran": dis_ran(sigma, fragmentation),
            "disnop": dis_nop(sigma, fragmentation),
        }
        expected = runs["disVal"].violations
        assert all(r.violations == expected for r in runs.values())
        for name, run in runs.items():
            series[name].append(run.parallel_time)
        rows.append(
            (
                f"({num_nodes/1000:.0f}k,{num_edges/1000:.0f}k)",
                *(round(runs[a].parallel_time)
                  for a in ("disVal", "disran", "disnop")),
            )
        )
    emit_table("fig6_scalability", ["|G|", "disVal", "disran", "disnop"], rows)

    # Shape 1: monotone growth end-to-end.
    assert all(
        later > earlier
        for earlier, later in zip(series["disVal"], series["disVal"][1:])
    )
    # Shape 2: disVal ≤ disnop at the largest size (the optimisation gap);
    # vs disran only within tolerance — with few, highly-selective rules a
    # lucky random assignment can match the balanced one (the paper's
    # 1.9×/1.5× gaps emerge at 50-rule workloads).
    assert series["disVal"][-1] <= series["disnop"][-1]
    assert series["disVal"][-1] <= series["disran"][-1] * 1.5
    # Shape 3: growth stays polynomially bounded in |G|.  At reproduction
    # scale hub neighbourhoods (hence block sizes) grow with |G|, so the
    # curve is super-linear — the paper's larger graphs flatten it; we
    # assert the envelope rather than strict linearity.
    size_growth = SIZES[-1][0] / SIZES[0][0]
    ratio = series["disVal"][-1] / series["disVal"][0]
    assert ratio < size_growth ** 2.5

    graph = power_law_graph(*SIZES[2], seed=6, domain_size=25)
    fragmentation = greedy_edge_cut_partition(graph, N, seed=1)
    benchmark.pedantic(
        lambda: dis_val(sigma, fragmentation), rounds=1, iterations=1
    )
