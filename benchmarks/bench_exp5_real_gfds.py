"""Exp-5 / Figure 7: effectiveness of real-life GFDs.

The paper exhibits three GFDs over YAGO2/DBpedia and the errors they
catch: GFD 1 (child-and-parent cycles), GFD 2 (two disjoint types),
GFD 3 (mayor's city and party in different countries) — plus φ1/φ2 from
the introduction.  This bench runs the curated rule set on the dataset
stand-ins and reports, per rule, the number of inconsistencies caught,
asserting every seeded error class is found with perfect accuracy.
"""

from __future__ import annotations

from collections import Counter


from repro import accuracy, det_vio, violation_entities
from repro.datasets import dbpedia_like, yago_like

from _bench_utils import emit_table


def test_exp5_real_gfds(benchmark):
    yago = yago_like.build(scale=200, seed=11)
    dbpedia = dbpedia_like.build(scale=400, seed=11)

    rows = []
    for dataset in (yago, dbpedia):
        violations = det_vio(dataset.gfds, dataset.graph)
        by_rule = Counter(v.gfd_name for v in violations)
        acc = accuracy(violation_entities(violations), dataset.truth_entities)
        for rule in sorted({g.name for g in dataset.gfds}):
            rows.append((dataset.name, rule, by_rule.get(rule, 0)))
        rows.append(
            (dataset.name, "≙ precision/recall",
             f"{acc.precision:.2f}/{acc.recall:.2f}")
        )
        # Perfect accuracy on the seeded ground truth.
        assert acc.precision == 1.0 and acc.recall == 1.0
        # Every curated rule fires (its error class was seeded).
        for gfd in dataset.gfds:
            assert by_rule.get(gfd.name, 0) > 0, f"{gfd.name} caught nothing"

    emit_table("exp5_real_gfds", ["dataset", "rule", "caught"], rows)

    benchmark.pedantic(
        lambda: det_vio(yago.gfds, yago.graph), rounds=1, iterations=1
    )
