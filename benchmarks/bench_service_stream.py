"""Continuous-validation headline: streamed updates over a warm session.

The :class:`~repro.service.ValidationService` claim is that a warm
process-backed session absorbs a *continuous* mutation stream at bounded
latency without ever falling back to wholesale re-materialisation:
concurrent producers submit ops, the applier coalesces them into bounded
delta batches, each batch rides the incremental path, and worker-resident
block caches are patched in place — zero rebuilds.

Two replayed traffic phases measure that end to end:

* **skewed sustain** — attribute writes with a Zipf-style hot set (a few
  hot nodes take most writes, mirroring real update logs); measures
  sustained ops/sec and p99 submit-to-applied latency, then asserts the
  follow-up warm ``validate()`` shipped deltas only and rebuilt **zero**
  worker blocks (``shipping.block_cache.builds == 0``, ``patched > 0``);
* **bursty mixed** — edge/node/attr bursts with inter-burst gaps from
  several producer threads; asserts exactness: the subscriber's diff
  stream telescopes to the violation set of a from-scratch batch
  ``det_vio`` on an identically mutated mirror graph.

Floors (sustained ops/sec, p99 latency ceiling) are asserted whenever
≥ 2 CPUs are usable; single-core runners only report.  Results land in
``results/service_stream.json``.
"""

from __future__ import annotations

import os
import random
import threading
import time

from repro import (
    ValidationService,
    ValidationSession,
    det_vio,
    generate_gfds,
    power_law_graph,
)
from repro.parallel.executors import usable_cpus

from _bench_utils import emit_json, emit_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: sustained throughput floor for the skewed attr phase (ops/sec)
SUSTAINED_OPS_FLOOR = 120.0

#: p99 submit-to-applied latency ceiling for the skewed attr phase (s)
P99_LATENCY_CEILING = 2.0

#: share of skewed-phase writes landing on the hot set
HOT_WRITE_SHARE = 0.8


def _skewed_ops(nodes, count, seed):
    """Attr writes with a hot set: 10% of nodes take ~80% of writes."""
    rng = random.Random(seed)
    hot = nodes[: max(1, len(nodes) // 10)]
    ops = []
    for step in range(count):
        pool = hot if rng.random() < HOT_WRITE_SHARE else nodes
        ops.append(("attr", rng.choice(pool), "val", f"s{seed}-{step}"))
    return ops


def _bursty_script(nodes, producer, bursts, burst_size, seed):
    """Per-producer mixed bursts; producer-unique keys keep any
    interleaving equivalent to per-producer sequential replay."""
    rng = random.Random(f"burst-{seed}-{producer}")
    out = []
    live = []
    for burst in range(bursts):
        ops = []
        for step in range(burst_size):
            roll = rng.random()
            if roll < 0.6:
                ops.append((
                    "attr", rng.choice(nodes), f"p{producer}",
                    f"b{burst}s{step}",
                ))
            elif roll < 0.8:
                src, dst = rng.sample(nodes, 2)
                if (src, dst) not in live:
                    ops.append(("edge+", src, dst, f"link{producer}"))
                    live.append((src, dst))
            elif roll < 0.9 and live:
                src, dst = live.pop(rng.randrange(len(live)))
                ops.append(("edge-", src, dst, f"link{producer}"))
            else:
                name = f"new-{producer}-{burst}-{step}"
                ops.append(("node", name, "city", {"val": f"c{step}"}))
                ops.append(("edge+", rng.choice(nodes), name, "to"))
        out.append(ops)
    return out


def _replay(graph, ops):
    for op in ops:
        if op[0] == "attr":
            graph.set_attr(op[1], op[2], op[3])
        elif op[0] == "edge+":
            graph.add_edge(op[1], op[2], op[3])
        elif op[0] == "edge-":
            graph.remove_edge(op[1], op[2], op[3])
        else:
            graph.add_node(op[1], op[2], op[3])


def test_service_stream_sustain_and_exactness():
    nodes_n, edges_n = (500, 1000) if QUICK else (1200, 2400)
    stream_ops = 400 if QUICK else 1500
    bursts, burst_size = (4, 10) if QUICK else (8, 25)
    producers = 3
    seed = 10

    graph = power_law_graph(nodes_n, edges_n, seed=seed, domain_size=25)
    mirror = power_law_graph(nodes_n, edges_n, seed=seed, domain_size=25)
    sigma = generate_gfds(graph, count=5, pattern_edges=2, seed=seed)
    nodes = sorted(graph.nodes())
    cpus = usable_cpus()

    with ValidationSession(
        graph, sigma, executor="process", processes=min(4, max(2, cpus))
    ) as session:
        session.validate(n=4)  # warm: pool up, shards resident

        # -- phase 1: skewed attr sustain ------------------------------
        script = _skewed_ops(nodes, stream_ops, seed)
        with ValidationService(
            session, max_batch_ops=64, max_batch_age=0.01
        ) as service:
            subscriber = service.subscribe()
            started = time.perf_counter()
            index = 0
            rng = random.Random(f"chunks-{seed}")
            while index < len(script):
                size = rng.randint(4, 32)
                service.submit(script[index:index + size])
                index += size
            assert service.flush(timeout=600)
            sustain_wall = time.perf_counter() - started
            p99 = service.latency_quantile(0.99)
            sustain_stats = service.stats()
            diffs = subscriber.drain()
        ops_per_sec = stream_ops / sustain_wall if sustain_wall else 0.0
        _replay(mirror, script)
        expected = det_vio(sigma, mirror)
        current = set(subscriber.baseline)
        for diff in diffs:
            current = diff.apply(current)
        assert current == expected == set(session.violations)

        # the follow-up warm validate rode the delta path end to end:
        # ops shipped, worker blocks patched in place, zero rebuilds
        run = session.validate(n=4)
        assert run.violations == expected
        assert run.shipping.full == 0, run.shipping
        assert run.shipping.delta > 0
        assert run.shipping.block_cache.builds == 0, run.shipping.block_cache
        assert run.shipping.block_cache.patched > 0

        # -- phase 2: bursty mixed exactness ---------------------------
        scripts = [
            _bursty_script(nodes, producer, bursts, burst_size, seed)
            for producer in range(producers)
        ]
        with ValidationService(
            session, max_batch_ops=64, max_batch_age=0.01
        ) as service:
            subscriber = service.subscribe()

            def run_producer(bursts_of_ops):
                gap = random.Random(id(bursts_of_ops) % 997)
                for burst_ops in bursts_of_ops:
                    service.submit(burst_ops)
                    time.sleep(gap.uniform(0.001, 0.004))

            threads = [
                threading.Thread(target=run_producer, args=(script,))
                for script in scripts
            ]
            burst_started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert service.flush(timeout=600)
            burst_wall = time.perf_counter() - burst_started
            burst_stats = service.stats()
            diffs = subscriber.drain()
        for script in scripts:
            for burst_ops in script:
                _replay(mirror, burst_ops)
        expected = det_vio(sigma, mirror)
        current = set(subscriber.baseline)
        for diff in diffs:
            current = diff.apply(current)
        assert current == expected == set(session.violations)
        run = session.validate(n=4)
        assert run.violations == expected
        assert run.shipping.full == 0, run.shipping  # still never reshipped

    emit_table(
        "service_stream",
        ["phase", "ops", "batches", "coalesced", "wall s", "ops/s",
         "p99 ms", "cpus"],
        [
            ("skewed attr sustain", sustain_stats.submitted,
             sustain_stats.batches, sustain_stats.cancelled,
             f"{sustain_wall:.3f}", f"{ops_per_sec:.0f}",
             f"{(p99 or 0) * 1e3:.1f}", cpus),
            ("bursty mixed", burst_stats.submitted, burst_stats.batches,
             burst_stats.cancelled, f"{burst_wall:.3f}",
             f"{burst_stats.submitted / burst_wall:.0f}" if burst_wall
             else "inf", "-", cpus),
        ],
    )
    emit_json("service_stream", {
        "quick": QUICK,
        "usable_cpus": cpus,
        "sustain": {
            "ops": sustain_stats.submitted,
            "batches": sustain_stats.batches,
            "coalesced": sustain_stats.cancelled,
            "diffs_emitted": sustain_stats.diffs_emitted,
            "wall_seconds": sustain_wall,
            "ops_per_second": ops_per_sec,
            "p99_apply_seconds": p99,
            "ops_floor": SUSTAINED_OPS_FLOOR,
            "p99_ceiling_seconds": P99_LATENCY_CEILING,
        },
        "bursty": {
            "ops": burst_stats.submitted,
            "batches": burst_stats.batches,
            "coalesced": burst_stats.cancelled,
            "diffs_emitted": burst_stats.diffs_emitted,
            "wall_seconds": burst_wall,
        },
        "warm_validate_after_stream": {
            "full": run.shipping.full,
            "delta": run.shipping.delta,
            "block_builds": run.shipping.block_cache.builds,
            "block_patches": run.shipping.block_cache.patched,
        },
    })

    if cpus >= 2:
        assert ops_per_sec >= SUSTAINED_OPS_FLOOR, (
            f"sustained only {ops_per_sec:.0f} ops/s "
            f"(floor {SUSTAINED_OPS_FLOOR}) on {cpus} CPUs"
        )
        assert p99 is not None and p99 <= P99_LATENCY_CEILING, (
            f"p99 submit-to-applied {p99:.3f}s "
            f"(ceiling {P99_LATENCY_CEILING}s)"
        )
    else:
        print(f"(floors skipped: only {cpus} usable CPU(s))")
