"""Figure 8 (Appendix): the impact of skewed graphs.

The paper fixes |G|=(10M, 20M), n=16 and sweeps the skew measure from
0.1 down to 0.02 (smaller = more skewed).  Shapes: all algorithms slow
down as skew worsens, but disVal (with replicate-and-split) degrades the
least — the paper reports 1.7× growth vs 2.0×/2.2× for disran/disnop over
a 5× skew increase.
"""

from __future__ import annotations


from repro import (
    dis_nop,
    dis_ran,
    dis_val,
    generate_gfds,
    greedy_edge_cut_partition,
    skewed_power_law_graph,
)

from _bench_utils import emit_table

SKEW_SWEEP = (0.5, 0.3, 0.15, 0.08, 0.04)
N = 8
SIZE = (2000, 4000)


def test_fig8_skew(benchmark):
    rows = []
    series = {"disVal": [], "disran": [], "disnop": []}
    for skew in SKEW_SWEEP:
        graph = skewed_power_law_graph(*SIZE, skew=skew, seed=8, domain_size=25)
        sigma = generate_gfds(graph, count=5, pattern_edges=2, seed=8)
        fragmentation = greedy_edge_cut_partition(graph, N, seed=1)
        runs = {
            "disVal": dis_val(sigma, fragmentation),
            "disran": dis_ran(sigma, fragmentation),
            "disnop": dis_nop(sigma, fragmentation),
        }
        expected = runs["disVal"].violations
        assert all(r.violations == expected for r in runs.values())
        max_degree = max(graph.degree(node) for node in graph.nodes())
        for name, run in runs.items():
            series[name].append(run.parallel_time)
        series.setdefault("hub", []).append(max_degree)
        rows.append(
            (
                skew,
                max_degree,
                *(round(runs[a].parallel_time)
                  for a in ("disVal", "disran", "disnop")),
            )
        )
    emit_table(
        "fig8_skew",
        ["skew knob", "max hub degree", "disVal", "disran", "disnop"],
        rows,
    )
    # Shape 1: more skew (rightwards in the sweep) costs more.
    assert series["disVal"][-1] > series["disVal"][0]
    # Shape 2: disVal is the most robust — its relative growth across the
    # sweep is no worse than the variants' (replicate-and-split at work).
    growth = {
        name: values[-1] / values[0]
        for name, values in series.items()
        if name != "hub"
    }
    assert growth["disVal"] <= growth["disnop"] * 1.05, growth
    # Shape 3: the generator knob actually concentrates edges on hubs
    # (the neighbourhood-ratio measure of the paper saturates at this
    # scale; hub degree is the finer-grained witness of skew).
    assert series["hub"][-1] > series["hub"][0]

    graph = skewed_power_law_graph(*SIZE, skew=SKEW_SWEEP[-1], seed=8,
                                   domain_size=25)
    sigma = generate_gfds(graph, count=5, pattern_edges=2, seed=8)
    fragmentation = greedy_edge_cut_partition(graph, N, seed=1)
    benchmark.pedantic(
        lambda: dis_val(sigma, fragmentation), rounds=1, iterations=1
    )
