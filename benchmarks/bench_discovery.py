"""Discovery subsystem headline: session-backed parallel mining.

`ValidationSession.discover` runs mining — candidate-pattern match
enumeration and support/confidence counting — as work units over the
parallel engine, so a multi-core box mines with real concurrency while
serial `discover_gfds` stays the single-threaded reference.  Both must
mine the *identical* rule set (asserted here and pinned by
`tests/test_discovery_parallel.py`); this benchmark measures what the
parallelism buys.

Measured as wall-clock medians at 4 (simulated) workers over a real
4-process pool, on an attribute-heavy graph where counting dominates —
the regime the paper's real-life workloads live in.  Asserted:

* mined-set equality (serial ≡ cold process ≡ warm process ≡ the
  match-list baseline);
* zero block-shares shipped on the warm phases (count + confirm reuse
  the shards mining shipped; a warm repeat ships nothing at all);
* zero VF2 re-enumerations on the warm ``count``/``confirm`` phases —
  every unit replays the resident matches ``mine`` deposited (the
  engine's match-store counters: ``misses == 0``, ``hits > 0``);
* the aggregate data path ships fewer payload bytes than the match-list
  baseline (forced via an explicit never-truncating evidence sample),
  per phase — the reduction is printed *and* asserted;
* the factorised count phase (``eval_mode="factorised"``) answers the
  identical tally queries with **zero** VF2 enumerations on this
  all-acyclic candidate set (session telemetry, measured on a
  zero-budget session so enumerate mode cannot replay resident
  matches), and the serial count work on a multiplicity-heavy graph
  runs at least ``COUNT_PHASE_BAR`` faster factorised than enumerated;
* warm mining beats serial by the bar below whenever ≥ 4 CPUs are
  usable (single/dual-core runners only report).

The replay-path sections pin ``eval_mode="enumerate"`` deliberately:
factorised mining deposits no matches (there is nothing to replay), so
the match-store assertions only make sense on the enumerating path.

Per-phase wall-clock and shipped-byte figures land in
``benchmarks/results/discovery_perf.json`` (uploaded by CI, so the
perf trajectory accumulates across PRs).
"""

from __future__ import annotations

import os
import statistics
import time

from repro import ValidationSession, discover_gfds, power_law_graph
from repro.parallel.executors import usable_cpus

from _bench_utils import emit_json, emit_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: warm parallel mining must beat serial at least this much at 4 workers.
#: The mining pipeline ships every enumerated match coordinator-wards
#: once (dependency proposal is a global decision), so quick-mode graphs
#: are partly IPC-bound — the bar is set for the quick configuration,
#: with headroom; the table shows the actual ratio.
PARALLEL_MINING_BAR = 1.15

#: the serial count work (evidence + dependency tallies per candidate
#: pattern, on the multiplicity-heavy count graph) must run at least
#: this much faster factorised than enumerated.  Observed quick-mode
#: ratios sit near 1.5–1.6x; the bar guards against the factorised
#: path silently degenerating into enumeration.
COUNT_PHASE_BAR = 1.25

DISCOVERY = dict(min_support=4, min_confidence=0.6, max_attrs=14)


def mined_key(discovered):
    return (
        discovered.gfd.name,
        discovered.gfd.pattern.signature(),
        discovered.gfd.lhs,
        discovered.gfd.rhs,
        discovered.support,
        discovered.confidence,
    )


def test_session_discovery_speedup(benchmark):
    # Attribute-heavy graphs put the work where real workloads have it:
    # support/confidence counting over many proposed dependencies — the
    # embarrassingly parallel phase.
    nodes, edges = (500, 1200) if QUICK else (800, 1900)
    rounds = 2
    graph = power_law_graph(
        nodes, edges, seed=17, domain_size=3,
        node_labels=["person", "city", "org", "repo"],
        edge_labels=["knows", "in", "for"],
        attributes=tuple(f"A{i}" for i in range(14)),
    )

    serial_times = []
    for _ in range(rounds):
        started = time.perf_counter()
        serial = discover_gfds(graph, **DISCOVERY)
        serial_times.append(time.perf_counter() - started)
    assert serial  # the workload must actually mine something

    with ValidationSession(
        graph, [], executor="process", processes=4
    ) as session:
        # Cold: pool start + full shard shipping + workload estimation.
        # confirm=False keeps the comparison apples-to-apples (serial
        # discover_gfds has no confirmation pass).
        # eval_mode="enumerate" pins the match-store data path this
        # section asserts on: factorised mining (the default) answers
        # count queries without materialising matches, so there would be
        # nothing resident to replay.  The factorised path gets its own
        # section below.
        started = time.perf_counter()
        cold = session.discover(n=4, confirm=False,
                                eval_mode="enumerate", **DISCOVERY)
        cold_time = time.perf_counter() - started
        assert [mined_key(d) for d in cold.rules] == [
            mined_key(d) for d in serial
        ]
        assert cold.executor == "process"
        assert cold.phase("enumerate").shipping.full > 0

        # Warm: cached workload, resident shards, same worker PIDs.
        warm_times = []
        for _ in range(rounds):
            started = time.perf_counter()
            warm = session.discover(n=4, confirm=False,
                                    eval_mode="enumerate", **DISCOVERY)
            warm_times.append(time.perf_counter() - started)
            assert [mined_key(d) for d in warm.rules] == [
                mined_key(d) for d in serial
            ]
            for phase in warm.phases:
                assert phase.shipping.full == 0, phase.phase
                assert phase.shipping.shipped_nodes == 0, phase.phase

        # One confirming run: the mined-Σ validation pass must also hit
        # the warm shards — zero block-shares, only Σ travels.
        confirmed = session.discover(n=4, eval_mode="enumerate", **DISCOVERY)
        confirm = confirmed.phase("confirm")
        assert confirm is not None
        assert confirm.shipping.full == 0
        assert confirm.shipping.delta == 0
        assert confirm.shipping.shipped_nodes == 0
        assert confirm.shipping.shipped_sigma > 0
        assert (
            confirm.shipping.worker_pids
            == confirmed.phase("enumerate").shipping.worker_pids
        )

        # Resident-match replay: every warm phase runs zero VF2
        # re-enumerations — the engine counter says every unit replayed
        # what mine left resident (enumerate replays on a warm repeat).
        for phase in confirmed.phases:
            store = phase.match_store
            assert store is not None, phase.phase
            assert store.misses == 0, (
                f"warm {phase.phase} re-enumerated {store.misses} unit(s) "
                "instead of replaying resident matches"
            )
            assert store.hits > 0, phase.phase

        # The match-list baseline: an explicit never-truncating sample
        # forces the documented match-shipping fallback while mining
        # the identical rule set — its payload bytes are what the
        # aggregate data path replaced.
        baseline = session.discover(n=4, sample_size=10**9, **DISCOVERY)
        assert [mined_key(d) for d in baseline.rules] == [
            mined_key(d) for d in serial
        ]
        reductions = {}
        for name in ("enumerate", "count"):
            aggregate_bytes = confirmed.phase(name).shipping.payload_bytes
            match_bytes = baseline.phase(name).shipping.payload_bytes
            assert aggregate_bytes < match_bytes, (
                f"{name}: aggregate payloads shipped {aggregate_bytes} "
                f"bytes, match lists {match_bytes}"
            )
            reductions[name] = match_bytes / aggregate_bytes
        # Count + confirm ship zero block-shares (asserted above) and
        # strictly sub-match-list payload bytes.
        assert confirm.shipping.payload_bytes <= \
            baseline.phase("confirm").shipping.payload_bytes

        # Factorised count phase, session view.  A fresh session with a
        # zero match-store budget makes the enumerate-mode count phase
        # genuinely re-enumerate (no resident matches to replay), so
        # the two modes answer the identical tally queries by
        # enumeration vs variable elimination.  Asserted: identical
        # mined rules, and the telemetry proof that strict factorised
        # mode ran ZERO VF2 enumerations where enumerate mode ran
        # thousands.  No wall-clock floor here: per-pivot blocks are
        # tiny, so per-unit VF2 is cheap and the two paths time out
        # near parity — the factorised wall-clock win lives in the
        # global (serial) count path measured below.
        with ValidationSession(
            graph, [], match_store_budget=0
        ) as count_session:
            for mode in ("enumerate", "factorised"):  # warm both paths
                count_session.discover(n=4, confirm=False, eval_mode=mode,
                                       **DISCOVERY)
            count_times = {}
            count_vf2 = {}
            count_rules = {}
            for mode in ("enumerate", "factorised"):
                times = []
                for _ in range(max(rounds, 3)):
                    run = count_session.discover(n=4, confirm=False,
                                                 eval_mode=mode,
                                                 **DISCOVERY)
                    times.append(run.phase("count").wall_seconds)
                count_times[mode] = statistics.median(times)
                count_vf2[mode] = run.phase("count").vf2_units
                count_rules[mode] = [mined_key(d) for d in run.rules]
        assert count_rules["enumerate"] == count_rules["factorised"] \
            == [mined_key(d) for d in serial]
        assert count_vf2["factorised"] == 0
        assert count_vf2["enumerate"] > 0

        # Factorised count phase, global view: the tentpole speedup.
        # On a multiplicity-heavy graph (hubs → many matches per
        # pattern) the serial count work — evidence aggregation plus
        # dependency tallies per candidate pattern — is where
        # enumeration cost scales with the match count and variable
        # elimination stays O(|G|·|pattern|).
        count_graph = power_law_graph(
            *((400, 2400) if QUICK else (500, 3000)),
            alpha=1.5, seed=17, domain_size=3,
            node_labels=["person", "city", "org", "repo"],
            edge_labels=["knows", "in", "for"],
            attributes=tuple(f"A{i}" for i in range(8)),
        )
        from repro.core.discovery import candidate_patterns
        from repro.matching import SubgraphMatcher

        tasks = []
        for pattern in candidate_patterns(count_graph, max_edges=2):
            matcher = SubgraphMatcher(pattern, count_graph)
            if matcher.factorised_plan() is None:
                continue
            _, evidence = matcher.evidence(eval_mode="factorised")
            deps = evidence.propose(pattern, DISCOVERY["max_attrs"])
            if deps:
                tasks.append((pattern, deps))
        assert tasks  # the workload must propose something to count
        serial_count = {}
        for mode in ("enumerate", "factorised"):
            reps = []
            for _ in range(2):
                total = 0.0
                for pattern, deps in tasks:
                    matcher = SubgraphMatcher(pattern, count_graph)
                    started = time.perf_counter()
                    matcher.evidence(eval_mode=mode)
                    matcher.dependency_tallies(deps, eval_mode=mode)
                    total += time.perf_counter() - started
                reps.append(total)
            serial_count[mode] = min(reps)
        count_speedup = (
            serial_count["enumerate"] / serial_count["factorised"]
            if serial_count["factorised"] else float("inf")
        )
        assert count_speedup > COUNT_PHASE_BAR, (
            f"factorised count work only {count_speedup:.2f}x faster "
            f"than enumeration (bar {COUNT_PHASE_BAR}x)"
        )

        serial_median = statistics.median(serial_times)
        warm_median = statistics.median(warm_times)
        cold_speedup = serial_median / cold_time if cold_time else float("inf")
        warm_speedup = (
            serial_median / warm_median if warm_median else float("inf")
        )
        cpus = usable_cpus()
        emit_table(
            "discovery_parallel",
            ["mode", "median wall s", "speedup", "rules", "workers", "cpus"],
            [
                ("serial discover_gfds", f"{serial_median:.3f}", "1.00x",
                 len(serial), 1, cpus),
                ("cold session.discover (pool+ship+estimate)",
                 f"{cold_time:.3f}", f"{cold_speedup:.2f}x",
                 len(cold.rules), 4, cpus),
                ("warm session.discover",
                 f"{warm_median:.3f}", f"{warm_speedup:.2f}x",
                 len(warm.rules), 4, cpus),
            ],
        )
        phase_rows = []
        phase_records = []
        for run_name, run in (("warm", confirmed), ("match-list", baseline)):
            for phase in run.phases:
                shipping = phase.shipping
                store = phase.match_store
                phase_rows.append((
                    run_name, phase.phase, f"{phase.wall_seconds:.3f}",
                    shipping.payload_bytes,
                    shipping.shard_bytes + shipping.sigma_bytes,
                    f"{store.hits}/{store.hits + store.misses}"
                    if store else "-",
                ))
                phase_records.append({
                    "run": run_name,
                    "phase": phase.phase,
                    "wall_seconds": phase.wall_seconds,
                    "payload_bytes": shipping.payload_bytes,
                    "shard_bytes": shipping.shard_bytes,
                    "sigma_bytes": shipping.sigma_bytes,
                    "shipped_nodes": shipping.shipped_nodes,
                    "store_hits": store.hits if store else None,
                    "store_misses": store.misses if store else None,
                })
        emit_table(
            "discovery_phases",
            ["run", "phase", "wall s", "payload B", "shard+sigma B",
             "replayed"],
            phase_rows,
        )
        print(
            "payload reduction vs match-list baseline: "
            + ", ".join(f"{name} {ratio:.2f}x"
                        for name, ratio in reductions.items())
        )
        session_count_speedup = (
            count_times["enumerate"] / count_times["factorised"]
            if count_times["factorised"] else float("inf")
        )
        emit_table(
            "discovery_count_phase",
            ["view", "eval mode", "wall s", "speedup", "VF2 unit(s)"],
            [
                ("session count phase", "enumerate",
                 f"{count_times['enumerate']:.3f}", "1.00x",
                 count_vf2["enumerate"]),
                ("session count phase", "factorised",
                 f"{count_times['factorised']:.3f}",
                 f"{session_count_speedup:.2f}x", count_vf2["factorised"]),
                ("serial count work", "enumerate",
                 f"{serial_count['enumerate']:.3f}", "1.00x", "-"),
                ("serial count work", "factorised",
                 f"{serial_count['factorised']:.3f}",
                 f"{count_speedup:.2f}x", 0),
            ],
        )
        emit_json("discovery_perf", {
            "quick": QUICK,
            "graph": {"nodes": nodes, "edges": edges},
            "workers": 4,
            "cpus": cpus,
            "serial_median_seconds": serial_median,
            "cold_seconds": cold_time,
            "warm_median_seconds": warm_median,
            "warm_speedup": warm_speedup,
            "payload_reduction": reductions,
            "phases": phase_records,
            "count_phase": {
                "session_enumerate_seconds": count_times["enumerate"],
                "session_factorised_seconds": count_times["factorised"],
                "session_speedup": session_count_speedup,
                "serial_enumerate_seconds": serial_count["enumerate"],
                "serial_factorised_seconds": serial_count["factorised"],
                "serial_speedup": count_speedup,
                "enumerate_vf2_units": count_vf2["enumerate"],
                "factorised_vf2_units": count_vf2["factorised"],
            },
        })
        if cpus >= 4:
            assert warm_speedup > PARALLEL_MINING_BAR, (
                f"warm parallel mining only {warm_speedup:.2f}x faster than "
                f"serial discover_gfds on {cpus} CPUs"
            )
        else:
            print(f"(speedup bar skipped: only {cpus} usable CPU(s))")

        benchmark.pedantic(
            lambda: session.discover(n=4, confirm=False, **DISCOVERY),
            rounds=1, iterations=1,
        )
