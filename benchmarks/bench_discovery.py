"""Discovery subsystem headline: session-backed parallel mining.

`ValidationSession.discover` runs mining — candidate-pattern match
enumeration and support/confidence counting — as work units over the
parallel engine, so a multi-core box mines with real concurrency while
serial `discover_gfds` stays the single-threaded reference.  Both must
mine the *identical* rule set (asserted here and pinned by
`tests/test_discovery_parallel.py`); this benchmark measures what the
parallelism buys.

Measured as wall-clock medians at 4 (simulated) workers over a real
4-process pool, on an attribute-heavy graph where counting dominates —
the regime the paper's real-life workloads live in.  Asserted:

* mined-set equality (serial ≡ cold process ≡ warm process);
* zero block-shares shipped on the warm phases (count + confirm reuse
  the shards mining shipped; a warm repeat ships nothing at all);
* warm mining beats serial by the bar below whenever ≥ 4 CPUs are
  usable (single/dual-core runners only report).
"""

from __future__ import annotations

import os
import statistics
import time

from repro import ValidationSession, discover_gfds, power_law_graph
from repro.parallel.executors import usable_cpus

from _bench_utils import emit_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: warm parallel mining must beat serial at least this much at 4 workers.
#: The mining pipeline ships every enumerated match coordinator-wards
#: once (dependency proposal is a global decision), so quick-mode graphs
#: are partly IPC-bound — the bar is set for the quick configuration,
#: with headroom; the table shows the actual ratio.
PARALLEL_MINING_BAR = 1.15

DISCOVERY = dict(min_support=4, min_confidence=0.6, max_attrs=14)


def mined_key(discovered):
    return (
        discovered.gfd.name,
        discovered.gfd.pattern.signature(),
        discovered.gfd.lhs,
        discovered.gfd.rhs,
        discovered.support,
        discovered.confidence,
    )


def test_session_discovery_speedup(benchmark):
    # Attribute-heavy graphs put the work where real workloads have it:
    # support/confidence counting over many proposed dependencies — the
    # embarrassingly parallel phase.
    nodes, edges = (500, 1200) if QUICK else (800, 1900)
    rounds = 2
    graph = power_law_graph(
        nodes, edges, seed=17, domain_size=3,
        node_labels=["person", "city", "org", "repo"],
        edge_labels=["knows", "in", "for"],
        attributes=tuple(f"A{i}" for i in range(14)),
    )

    serial_times = []
    for _ in range(rounds):
        started = time.perf_counter()
        serial = discover_gfds(graph, **DISCOVERY)
        serial_times.append(time.perf_counter() - started)
    assert serial  # the workload must actually mine something

    with ValidationSession(
        graph, [], executor="process", processes=4
    ) as session:
        # Cold: pool start + full shard shipping + workload estimation.
        # confirm=False keeps the comparison apples-to-apples (serial
        # discover_gfds has no confirmation pass).
        started = time.perf_counter()
        cold = session.discover(n=4, confirm=False, **DISCOVERY)
        cold_time = time.perf_counter() - started
        assert [mined_key(d) for d in cold.rules] == [
            mined_key(d) for d in serial
        ]
        assert cold.executor == "process"
        assert cold.phase("enumerate").shipping.full > 0

        # Warm: cached workload, resident shards, same worker PIDs.
        warm_times = []
        for _ in range(rounds):
            started = time.perf_counter()
            warm = session.discover(n=4, confirm=False, **DISCOVERY)
            warm_times.append(time.perf_counter() - started)
            assert [mined_key(d) for d in warm.rules] == [
                mined_key(d) for d in serial
            ]
            for phase in warm.phases:
                assert phase.shipping.full == 0, phase.phase
                assert phase.shipping.shipped_nodes == 0, phase.phase

        # One confirming run: the mined-Σ validation pass must also hit
        # the warm shards — zero block-shares, only Σ travels.
        confirmed = session.discover(n=4, **DISCOVERY)
        confirm = confirmed.phase("confirm")
        assert confirm is not None
        assert confirm.shipping.full == 0
        assert confirm.shipping.delta == 0
        assert confirm.shipping.shipped_nodes == 0
        assert confirm.shipping.shipped_sigma > 0
        assert (
            confirm.shipping.worker_pids
            == confirmed.phase("enumerate").shipping.worker_pids
        )

        serial_median = statistics.median(serial_times)
        warm_median = statistics.median(warm_times)
        cold_speedup = serial_median / cold_time if cold_time else float("inf")
        warm_speedup = (
            serial_median / warm_median if warm_median else float("inf")
        )
        cpus = usable_cpus()
        emit_table(
            "discovery_parallel",
            ["mode", "median wall s", "speedup", "rules", "workers", "cpus"],
            [
                ("serial discover_gfds", f"{serial_median:.3f}", "1.00x",
                 len(serial), 1, cpus),
                ("cold session.discover (pool+ship+estimate)",
                 f"{cold_time:.3f}", f"{cold_speedup:.2f}x",
                 len(cold.rules), 4, cpus),
                ("warm session.discover",
                 f"{warm_median:.3f}", f"{warm_speedup:.2f}x",
                 len(warm.rules), 4, cpus),
            ],
        )
        if cpus >= 4:
            assert warm_speedup > PARALLEL_MINING_BAR, (
                f"warm parallel mining only {warm_speedup:.2f}x faster than "
                f"serial discover_gfds on {cpus} CPUs"
            )
        else:
            print(f"(speedup bar skipped: only {cpus} usable CPU(s))")

        benchmark.pedantic(
            lambda: session.discover(n=4, confirm=False, **DISCOVERY),
            rounds=1, iterations=1,
        )
