"""Figure 5(j–l): communication time vs. ``n`` for the distributed family.

The paper measures parallel data-shipment time for disVal/disran/disnop
(repVal is omitted — it ships nothing).  Shapes: (a) the total data
shipped is far smaller than the graph; (b) communication takes ~12–24% of
the total; (c) communication *time* is not very sensitive to ``n`` (data
ships in parallel).
"""

from __future__ import annotations

import pytest

from repro import dis_nop, dis_ran, dis_val, greedy_edge_cut_partition, rep_val

from _bench_utils import N_SWEEP, emit_table


@pytest.mark.parametrize("dataset_name", ["DBpedia", "YAGO2", "Pokec"])
def test_fig5_communication(dataset_name, bench_datasets, bench_workloads,
                            benchmark):
    dataset = bench_datasets[dataset_name]
    graph = dataset.graph
    sigma = bench_workloads[dataset_name]
    rows = []
    shares = []
    for n in N_SWEEP:
        fragmentation = greedy_edge_cut_partition(graph, n, seed=1)
        runs = {
            "disVal": dis_val(sigma, fragmentation),
            "disran": dis_ran(sigma, fragmentation),
            "disnop": dis_nop(sigma, fragmentation),
        }
        rows.append(
            (
                n,
                *(round(runs[a].report.communication_time)
                  for a in ("disVal", "disran", "disnop")),
                round(runs["disVal"].report.total_shipped),
            )
        )
        shares.append(runs["disVal"].report.communication_share)
    emit_table(
        f"fig5_communication_{dataset_name}",
        ["n", "disVal", "disran", "disnop", "disVal shipped"],
        rows,
    )
    # Shape (a): shipped volume ≪ graph size × n (no full replication).
    for row, n in zip(rows, N_SWEEP):
        assert row[4] < graph.size * n
    # Shape (b): communication is a minority share but non-trivial.
    assert all(0.02 < share < 0.5 for share in shares), shares
    # Shape (c): comm time does not blow up with n — max/min stays small
    # compared with the computation speedup over the same sweep.
    comm = [row[1] for row in rows]
    assert max(comm) / max(1, min(comm)) < 6.0
    # repVal ships nothing at all.
    assert rep_val(sigma, graph, n=8).report.total_shipped == 0

    fragmentation = greedy_edge_cut_partition(graph, 16, seed=1)
    benchmark.pedantic(
        lambda: dis_val(sigma, fragmentation), rounds=1, iterations=1
    )
