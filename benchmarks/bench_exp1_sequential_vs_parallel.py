"""Exp-1 headline: parallel scalability against sequential execution.

The paper reports that sequential detVio "does not terminate within 6000
seconds" on graphs where repVal/disVal finish in minutes with 20
processors.  Two honest observations at reproduction scale (documented in
EXPERIMENTS.md):

* The paper's core *parallel scalability* claim is apples-to-apples here:
  the same validation pipeline run with n=1 vs n=20 — parallel time must
  fall near-linearly (Theorems 10/11).
* Our from-scratch ``detVio`` uses label-indexed VF2 matching, so on
  10³-node graphs it is competitive in *total* work; the paper's
  non-termination manifests at 10⁷ nodes where a single machine cannot
  hold the match frontier.  We therefore report detVio's cost for context
  and assert the scalability shape, not detVio's absolute defeat.
"""

from __future__ import annotations

import os
import time


from repro import (
    dis_val,
    generate_gfds,
    greedy_edge_cut_partition,
    power_law_graph,
    rep_val,
    sequential_run,
)
from repro.parallel import (
    build_shared_groups,
    estimate_workload,
    execute_plan,
    lpt_partition,
)
from repro.parallel.executors import usable_cpus

from _bench_utils import emit_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def test_exp1_parallel_scalability(benchmark):
    nodes, edges = (1500, 3000) if QUICK else (3000, 6000)
    graph = power_law_graph(nodes, edges, seed=10, domain_size=25)
    sigma = generate_gfds(graph, count=6, pattern_edges=3, seed=10)

    rep1 = rep_val(sigma, graph, n=1)
    rep20 = rep_val(sigma, graph, n=20)
    dis4 = dis_val(sigma, greedy_edge_cut_partition(graph, 4, seed=1))
    dis20 = dis_val(sigma, greedy_edge_cut_partition(graph, 20, seed=1))
    seq_vio, seq_cost = sequential_run(sigma, graph)

    emit_table(
        "exp1_sequential_vs_parallel",
        ["algorithm", "T (cost units)", "|Vio|"],
        [
            ("detVio (indexed, full)", round(seq_cost), len(seq_vio)),
            ("repVal n=1", round(rep1.parallel_time), len(rep1.violations)),
            ("repVal n=20", round(rep20.parallel_time), len(rep20.violations)),
            ("disVal n=4", round(dis4.parallel_time), len(dis4.violations)),
            ("disVal n=20", round(dis20.parallel_time), len(dis20.violations)),
        ],
    )

    # Shape 1: everyone agrees on Vio(Σ, G).
    assert rep1.violations == seq_vio
    assert rep20.violations == seq_vio
    assert dis4.violations == seq_vio
    assert dis20.violations == seq_vio
    # Shape 2 (the paper's headline): near-linear parallel speedup of the
    # same pipeline — 20 workers cut parallel time by well over half an
    # order of magnitude.
    speedup = rep1.parallel_time / rep20.parallel_time
    assert speedup > 8.0, f"repVal speedup n=1→20 only {speedup:.1f}×"
    assert dis20.parallel_time < dis4.parallel_time
    # (No assertion pits the parallel pipeline against the indexed detVio:
    # at 10³ nodes the block-based pipeline pays ~|W| redundant block
    # loads that a single indexed pass avoids, so the sequential baseline
    # is honestly competitive here.  The paper's detVio loses at 10⁷ nodes
    # where the match frontier no longer fits one machine — see
    # EXPERIMENTS.md.)

    benchmark.pedantic(
        lambda: rep_val(sigma, graph, n=20), rounds=1, iterations=1
    )


def test_exp1_real_multiprocess_speedup(benchmark):
    """Real concurrency, real wall clocks: the process executor against the
    serial in-process run of the *same* plan on the fig6-scale workload.

    Simulated costs model the paper's cluster; this measurement is the
    sanity check behind them — shipping each worker's shard to a process
    and detecting violations there must beat executing the whole plan
    serially once enough cores exist.  The > 1.3x bar at 4 workers is
    asserted only when >= 4 CPUs are usable (single-core runners can only
    report the numbers); violation equality is asserted everywhere.
    """
    nodes, edges = (1500, 3000) if QUICK else (3000, 6000)
    graph = power_law_graph(nodes, edges, seed=10, domain_size=25)
    sigma = generate_gfds(graph, count=6, pattern_edges=3, seed=10)
    units = estimate_workload(sigma, graph, groups=build_shared_groups(sigma))
    plan, _ = lpt_partition(units, 4)

    serial_start = time.perf_counter()
    serial = execute_plan(sigma, graph, plan, executor="simulated")
    serial_time = time.perf_counter() - serial_start

    process_start = time.perf_counter()
    parallel = execute_plan(sigma, graph, plan, executor="process", processes=4)
    process_time = time.perf_counter() - process_start

    def vio(results):
        return set().union(
            *(r.violations for worker in results for r in worker if r)
        )

    assert vio(serial) == vio(parallel)  # real parallelism changes nothing

    speedup = serial_time / process_time if process_time else float("inf")
    cpus = usable_cpus()
    emit_table(
        "exp1_real_multiprocess",
        ["executor", "wall s", "speedup", "workers", "cpus"],
        [
            ("simulated (serial)", f"{serial_time:.2f}", "1.0x", 1, cpus),
            ("process", f"{process_time:.2f}", f"{speedup:.2f}x", 4, cpus),
        ],
    )
    if cpus >= 4:
        assert speedup > 1.3, (
            f"real 4-worker speedup only {speedup:.2f}x on {cpus} CPUs"
        )
    else:
        print(f"(speedup bar skipped: only {cpus} usable CPU(s))")

    benchmark.pedantic(
        lambda: execute_plan(
            sigma, graph, plan, executor="process", processes=4
        ),
        rounds=1,
        iterations=1,
    )
