"""Figure 5(e, g, i): parallel time vs. |Q| (pattern size).

The paper fixes ‖Σ‖=50, n=16 and sweeps |Q| from 2 to 6 (here: pattern
edge counts 1–4 with ‖Σ‖=6).  Shapes: time grows with |Q| (larger work
units), and the optimised algorithms dominate their variants throughout.

Patterns are single-component for this sweep: multi-component patterns'
unit *count* scales with label-pool products, which would confound the
per-unit size effect the figure isolates.
"""

from __future__ import annotations

import pytest

from repro import (
    dis_nop,
    dis_val,
    generate_gfds,
    greedy_edge_cut_partition,
    rep_nop,
    rep_val,
)

from _bench_utils import emit_table

Q_SWEEP = (1, 2, 3, 4)
N = 16
SIGMA = 6


@pytest.mark.parametrize("dataset_name", ["DBpedia", "YAGO2", "Pokec"])
def test_fig5_varying_q(dataset_name, bench_datasets, benchmark):
    graph = bench_datasets[dataset_name].graph
    fragmentation = greedy_edge_cut_partition(graph, N, seed=1)
    rows = []
    for q in Q_SWEEP:
        sigma = generate_gfds(graph, count=SIGMA, pattern_edges=q, seed=3,
                              two_component_fraction=0.0)
        runs = {
            "repVal": rep_val(sigma, graph, n=N),
            "repnop": rep_nop(sigma, graph, n=N),
            "disVal": dis_val(sigma, fragmentation),
            "disnop": dis_nop(sigma, fragmentation),
        }
        expected = runs["repVal"].violations
        assert all(r.violations == expected for r in runs.values())
        rows.append(
            (q, *(round(runs[a].parallel_time) for a in
                  ("repVal", "repnop", "disVal", "disnop")))
        )
    emit_table(
        f"fig5_varying_q_{dataset_name}",
        ["|Q| edges", "repVal", "repnop", "disVal", "disnop"],
        rows,
    )
    rep_series = [row[1] for row in rows]
    dis_series = [row[3] for row in rows]
    # Shape 1: bigger patterns → bigger work units → longer runs.
    assert rep_series[-1] > rep_series[0]
    assert dis_series[-1] > dis_series[0]
    # Shape 2: optimisation gap at every |Q|.
    for q_row in rows:
        assert q_row[1] <= q_row[2]
        assert q_row[3] <= q_row[4]

    sigma = generate_gfds(graph, count=SIGMA, pattern_edges=Q_SWEEP[-1], seed=3,
                          two_component_fraction=0.0)
    benchmark.pedantic(
        lambda: rep_val(sigma, graph, n=N), rounds=1, iterations=1
    )
