"""Helpers shared by the benchmark modules (table emission, sweeps)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence

RESULTS_DIR = Path(__file__).parent / "results"

#: the paper's processor sweep (Exp-1)
N_SWEEP = (4, 8, 12, 16, 20)


def emit_table(name: str, headers: Sequence[str], rows: List[Sequence]) -> str:
    """Format, print and persist a results table.

    The printed rows are the series the corresponding paper figure plots;
    a copy lands in ``benchmarks/results/<name>.txt``.
    """
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")
    return text


def emit_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable result artifact.

    ``benchmarks/results/<name>.json`` is uploaded by the CI job, so a
    perf trajectory accumulates across PRs instead of living only in
    run logs.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
