"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper figure — these isolate the individual levers inside
repVal/disVal that the ``*nop``/``*ran`` variants only toggle together:

* bi-criteria assignment vs. pure load balancing vs. random (Prop. 13);
* replicate-and-split on vs. off over a skewed graph (Appendix);
* multi-query sharing on vs. off (Appendix);
* incremental maintenance vs. from-scratch re-detection (extension).
"""

from __future__ import annotations

import time


from repro import (
    dis_val,
    generate_gfds,
    greedy_edge_cut_partition,
    rep_val,
    skewed_power_law_graph,
)
from repro.core import det_vio
from repro.core.incremental import IncrementalValidator

from _bench_utils import emit_table


def test_assignment_strategy_ablation(benchmark):
    """Communication volume: bicriteria ≤ balance-only ≤ random (typically)."""
    graph = skewed_power_law_graph(1500, 3000, skew=0.3, seed=20, domain_size=20)
    sigma = generate_gfds(graph, count=5, pattern_edges=2, seed=20)
    fragmentation = greedy_edge_cut_partition(graph, 8, seed=1)
    runs = {
        strategy: dis_val(sigma, fragmentation, assignment=strategy)
        for strategy in ("bicriteria", "balance_only", "random")
    }
    rows = [
        (name, round(run.report.total_shipped), round(run.report.makespan),
         round(run.parallel_time))
        for name, run in runs.items()
    ]
    emit_table("ablation_assignment",
               ["strategy", "shipped", "makespan", "T"], rows)
    # The balanced strategies beat random end-to-end; shipped volumes are
    # tiny at this scale, so the robust signal is parallel time.
    assert runs["bicriteria"].parallel_time <= runs["random"].parallel_time
    assert runs["bicriteria"].report.makespan <= runs["random"].report.makespan
    expected = runs["bicriteria"].violations
    assert all(run.violations == expected for run in runs.values())
    benchmark.pedantic(
        lambda: dis_val(sigma, fragmentation), rounds=1, iterations=1
    )


def test_split_ablation(benchmark):
    """Replicate-and-split never hurts the makespan on skewed graphs."""
    graph = skewed_power_law_graph(1500, 3000, skew=0.1, seed=21, domain_size=20)
    sigma = generate_gfds(graph, count=5, pattern_edges=2, seed=21)
    with_split = rep_val(sigma, graph, n=8)
    without = rep_val(sigma, graph, n=8, split_threshold=0)
    benchmark.pedantic(
        lambda: rep_val(sigma, graph, n=8), rounds=1, iterations=1
    )
    emit_table(
        "ablation_split",
        ["variant", "makespan", "T"],
        [
            ("split on", round(with_split.report.makespan),
             round(with_split.parallel_time)),
            ("split off", round(without.report.makespan),
             round(without.parallel_time)),
        ],
    )
    assert with_split.violations == without.violations
    assert with_split.report.makespan <= without.report.makespan * 1.05


def test_incremental_vs_scratch(benchmark):
    """Maintaining Vio under updates beats re-running detVio."""
    from repro.graph import power_law_graph

    graph = power_law_graph(4000, 8000, seed=22, domain_size=10)
    sigma = generate_gfds(graph, count=3, pattern_edges=2, seed=22)
    benchmark.pedantic(
        lambda: IncrementalValidator(sigma, graph), rounds=1, iterations=1
    )
    validator = IncrementalValidator(sigma, graph)

    nodes = list(graph.nodes())
    updates = [(nodes[(i * 37) % len(nodes)], "A0", f"v{i % 7}")
               for i in range(20)]

    t0 = time.perf_counter()
    for node, attr, value in updates:
        validator.set_attr(node, attr, value)
    incremental_time = time.perf_counter() - t0

    # From-scratch baseline: full detVio after every update (graph already
    # holds the final state; re-run the same count for a fair clock).
    t0 = time.perf_counter()
    for _ in updates:
        det_vio(sigma, graph)
    scratch_time = time.perf_counter() - t0

    emit_table(
        "ablation_incremental",
        ["approach", "20 updates (s)"],
        [
            ("incremental", f"{incremental_time:.3f}"),
            ("from-scratch", f"{scratch_time:.3f}"),
        ],
    )
    assert validator.violations == det_vio(sigma, graph)
    assert incremental_time < scratch_time
